"""Tables: a heap file plus its indexes, with data-only locking glue.

The ordering of work inside each operation is what makes ARIES/IM's
data-only locking sound (§2.1):

- **insert**: the record manager inserts the record and takes the
  commit-duration X lock on its RID *first*; each index insert then
  only needs the instant next-key lock — the new key itself is already
  protected by the record lock.
- **delete**: the RID is X-locked, every index deletes its key (taking
  the commit-duration next-key locks), and the record is ghosted last.
- **fetch via an index**: the index S-locks the found key — which *is*
  the record lock — so the record manager reads without locking.

With an index-specific protocol the record manager locks on fetch too
(``protocol.record_fetch_needs_lock``), which is exactly the extra
locking cost the paper charges those protocols with.

Snapshot transactions (``txn.snapshot`` set, see :mod:`repro.mvcc`)
take the other road entirely: reads acquire **zero** locks.  A
snapshot scan merges the live tree's key stream (latch-coupled, no
lock requests) with the dead-key side store's stream — deleted keys
the tree has physically removed — and judges every candidate by its
heap slot's ``[xmin, xmax]`` stamps.  The delete path registers the
dead keys *before* removing them from the indexes, so at no instant is
a key absent from both structures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.common.errors import (
    KeyNotFoundError,
    LockError,
    TransactionNotActiveError,
)
from repro.common.keys import UserKey, encode_key, prefix_upper_bound
from repro.common.rid import RID
from repro.locks.modes import LockMode
from repro.btree.fetch import Cursor, _search_bound, index_fetch, index_fetch_next
from repro.btree.insert import index_insert
from repro.btree.delete import index_delete
from repro.data.heap import HeapFile
from repro.wal.serialization import decode_value, encode_value

if TYPE_CHECKING:  # pragma: no cover
    from repro.btree.tree import BTree
    from repro.db import Database
    from repro.txn.transaction import Transaction

Row = dict[str, Any]


def encode_row(row: Row) -> bytes:
    return encode_value(row)


def decode_row(raw: bytes) -> Row:
    row, _ = decode_value(raw)
    return row


class Table:
    """One table: heap file + any number of B+-tree indexes."""

    def __init__(self, ctx: "Database", table_id: int, name: str) -> None:
        self._ctx = ctx
        self.table_id = table_id
        self.name = name
        self.heap = HeapFile(ctx, table_id)
        self.indexes: dict[str, "BTree"] = {}

    # -- modification ------------------------------------------------------------

    def insert(self, txn: "Transaction", row: Row) -> RID:
        """Insert ``row``; maintains every index.

        The record lock (X, commit duration) is taken by the heap
        insert, before any index is touched."""
        rid = self.heap.insert(txn, encode_row(row))
        for tree in self.indexes.values():
            key = tree.make_key(row[tree.column], rid)
            index_insert(tree, txn, key)
        return rid

    def delete(self, txn: "Transaction", rid: RID) -> Row:
        """Delete the record at ``rid``; maintains every index.

        The commit-duration X record lock comes first (§2.1: with
        data-only locking the record manager's lock is the one that
        protects the keys being deleted)."""
        self.heap._lock(txn, rid, LockMode.X)
        raw = self.heap.fetch(txn, rid, lock=False)
        row = decode_row(raw)
        # Dead keys register *before* the index deletes: a concurrent
        # snapshot scan must find every key in the tree or the side
        # store at every instant (the merge dedupes the overlap).
        self._ctx.mvcc_note_dead(self, rid, row, txn.txn_id)
        for tree in self.indexes.values():
            key = tree.make_key(row[tree.column], rid)
            index_delete(tree, txn, key)
        self.heap.delete(txn, rid)
        return row

    def update(self, txn: "Transaction", rid: RID, changes: Row) -> RID:
        """Delete + re-insert (the classic physiological update)."""
        row = self.delete(txn, rid)
        row.update(changes)
        return self.insert(txn, row)

    # -- retrieval ----------------------------------------------------------------

    def fetch_row(self, txn: "Transaction", rid: RID, lock: bool = True) -> Row:
        return decode_row(self.heap.fetch(txn, rid, lock=lock))

    def fetch_by_key(
        self,
        txn: "Transaction",
        index_name: str,
        key: UserKey,
        isolation: str = "rr",
    ) -> tuple[RID, Row] | None:
        """Point lookup through an index (Fetch with '=' condition).

        ``isolation="cs"`` (cursor stability, degree 2): the key lock is
        released as soon as the row has been read, instead of being held
        to commit.  Mixing isolation levels over the same keys within
        one transaction weakens the RR guarantees for those keys.

        A snapshot transaction ignores ``isolation`` and reads its
        snapshot, lock-free."""
        if txn.snapshot is not None or isolation == "snapshot":
            encoded = encode_key(key)
            for rid, row in self._snapshot_scan(
                txn, index_name, encoded, ">=", encoded, "="
            ):
                return rid, row
            return None
        tree = self.indexes[index_name]
        result = index_fetch(tree, txn, encode_key(key), comparison="=", isolation=isolation)
        if not result.found:
            self._cs_release(txn, result, isolation)
            return None
        rid = result.key.rid
        lock = tree.protocol.record_fetch_needs_lock
        row = self.fetch_row(txn, rid, lock=lock)
        self._cs_release(txn, result, isolation)
        return rid, row

    def fetch_by_prefix(
        self, txn: "Transaction", index_name: str, prefix: UserKey
    ) -> tuple[RID, Row] | None:
        """Partial-key Fetch (§1.1): the first key whose value starts
        with ``prefix``, or None (with the repeatable not-found lock
        left behind, as for any Fetch miss)."""
        if txn.snapshot is not None:
            for rid, row in self.scan_prefix(txn, index_name, prefix):
                return rid, row
            return None
        tree = self.indexes[index_name]
        encoded = encode_key(prefix)
        result = index_fetch(tree, txn, encoded, comparison=">=")
        if not result.found or not result.key.value.startswith(encoded):
            return None
        rid = result.key.rid
        lock = tree.protocol.record_fetch_needs_lock
        return rid, self.fetch_row(txn, rid, lock=lock)

    def scan_prefix(
        self, txn: "Transaction", index_name: str, prefix: UserKey
    ) -> Iterator[tuple[RID, Row]]:
        """All rows whose index value starts with ``prefix``, in order."""
        if txn.snapshot is not None:
            encoded = encode_key(prefix)
            upper = prefix_upper_bound(encoded)
            yield from self._snapshot_scan(
                txn, index_name, encoded, ">=", upper, "<"
            )
            return
        tree = self.indexes[index_name]
        encoded = encode_key(prefix)
        upper = prefix_upper_bound(encoded)
        from repro.btree.fetch import Cursor

        cursor = Cursor(tree)
        lock_records = tree.protocol.record_fetch_needs_lock
        result = index_fetch(tree, txn, encoded, comparison=">=", cursor=cursor)
        while result.found and result.key is not None:
            if not result.key.value.startswith(encoded):
                return
            rid = result.key.rid
            yield rid, self.fetch_row(txn, rid, lock=lock_records)
            result = index_fetch_next(
                tree, txn, cursor, stop_value=upper, stop_comparison="<"
            ) if upper is not None else index_fetch_next(tree, txn, cursor)

    def _cs_release(self, txn: "Transaction", result, isolation: str) -> None:
        """Release a cursor-stability key lock once the cursor moved on."""
        if isolation != "cs" or result.lock_name is None or txn.in_rollback:
            return
        try:
            self._ctx.locks.release(txn.txn_id, result.lock_name)
        except LockError:
            pass  # already converted away or not retained (instant path)

    def scan(
        self,
        txn: "Transaction",
        index_name: str,
        low: UserKey | None = None,
        high: UserKey | None = None,
        low_comparison: str = ">=",
        high_comparison: str = "<=",
        isolation: str = "rr",
    ) -> Iterator[tuple[RID, Row]]:
        """Range scan: Fetch to open, Fetch Next to advance (§2.2/§2.3).

        Under cursor stability (``isolation="cs"``) each key's lock is
        released as soon as the cursor advances past it, so at most one
        scan lock is held at a time (degree 2).  A snapshot transaction
        scans its snapshot, lock-free."""
        if txn.snapshot is not None or isolation == "snapshot":
            yield from self._snapshot_scan(
                txn,
                index_name,
                encode_key(low) if low is not None else b"",
                low_comparison,
                encode_key(high) if high is not None else None,
                high_comparison,
            )
            return
        tree = self.indexes[index_name]
        cursor = Cursor(tree)
        start = encode_key(low) if low is not None else b""
        stop = encode_key(high) if high is not None else None
        lock_records = tree.protocol.record_fetch_needs_lock
        result = index_fetch(
            tree, txn, start, comparison=low_comparison, cursor=cursor,
            isolation=isolation,
        )
        if not result.found:
            self._cs_release(txn, result, isolation)
            return
        while True:
            assert result.key is not None
            if stop is not None and not _within(result.key.value, stop, high_comparison):
                self._cs_release(txn, result, isolation)
                return
            rid = result.key.rid
            yield rid, self.fetch_row(txn, rid, lock=lock_records)
            previous = result
            result = index_fetch_next(
                tree, txn, cursor, stop_value=stop, stop_comparison=high_comparison,
                isolation=isolation,
            )
            self._cs_release(txn, previous, isolation)
            if not result.found:
                self._cs_release(txn, result, isolation)
                return

    # -- the snapshot read path (zero locks) -------------------------------

    def _snapshot_row(self, snapshot, rid: RID) -> Row | None:
        """Read a version latch-only and judge it against the snapshot.
        None: slot purged, version not yet committed at the snapshot,
        or deleted before it."""
        ver = self.heap.version(rid)
        if ver is None:
            return None
        data, visible, xmin, xmax = ver
        if not visible and xmax == 0:
            return None  # pre-MVCC ghost: deleted long ago, unstamped
        if not snapshot.visible_version(xmin, xmax):
            return None
        return decode_row(data)

    def _snapshot_scan(
        self,
        txn: "Transaction",
        index_name: str,
        start: bytes,
        low_comparison: str,
        stop: bytes | None,
        high_comparison: str,
    ) -> Iterator[tuple[RID, Row]]:
        """Merge the live tree's keys with the dead-key store's, in
        (value, rid) order, yielding the versions the snapshot sees.

        The tree side runs the ordinary Fetch/Fetch Next machinery with
        ``isolation="snapshot"`` — latch coupling, cursor repositioning
        across splits, but **no lock requests**.  The dead side is
        queried incrementally against the live store, so a delete
        landing ahead of the merge position is still found; behind the
        position, the tree already served the key (delete registers the
        dead entry before removing the tree key).  Visibility comes
        from the slot stamps alone, so a stale dead entry (aborted
        deleter, purged slot) yields nothing."""
        snapshot = txn.snapshot
        if snapshot is None:
            raise TransactionNotActiveError(
                "snapshot reads require a snapshot transaction "
                "(db.begin_snapshot() / db.snapshot())"
            )
        self._ctx.stats.incr("mvcc.snapshot_scans")
        tree = self.indexes[index_name]
        self._ctx.mvcc_ensure_dead_keys(self)
        versions = self._ctx.versions
        bound = _search_bound(start, "=" if low_comparison == "=" else low_comparison)
        pos: tuple[bytes, RID] = (bound.value, bound.rid)
        inclusive = True
        cursor = Cursor(tree)
        result = index_fetch(
            tree,
            txn,
            start,
            comparison=">=" if low_comparison == "=" else low_comparison,
            cursor=cursor,
            isolation="snapshot",
        )
        while True:
            tree_pair: tuple[bytes, RID] | None = None
            if result.key is not None:
                if stop is None or _within(result.key.value, stop, high_comparison):
                    tree_pair = (result.key.value, result.key.rid)
            # Drain dead keys strictly before the next tree key.
            while True:
                entry = versions.next_dead(
                    tree.index_id, pos, inclusive, stop, high_comparison
                )
                if entry is None:
                    break
                dead_pair = (entry[0], entry[1])
                if tree_pair is not None and dead_pair >= tree_pair:
                    break
                pos, inclusive = dead_pair, False
                if snapshot.delete_visible(entry[2]):
                    # The noted deleter committed in this snapshot's
                    # past: certainly invisible, skip without fixing
                    # the heap page (keeps long chains cheap pre-GC).
                    continue
                row = self._snapshot_row(snapshot, entry[1])
                if row is not None:
                    yield entry[1], row
            if tree_pair is None:
                return
            pos, inclusive = tree_pair, False
            row = self._snapshot_row(snapshot, tree_pair[1])
            if row is not None:
                yield tree_pair[1], row
            result = index_fetch_next(
                tree,
                txn,
                cursor,
                stop_value=stop,
                stop_comparison=high_comparison,
                isolation="snapshot",
            )

    def row_count(self, txn: "Transaction") -> int:
        """Visible records (via the heap, no index)."""
        return len(self.heap.scan_rids())


def _within(value: bytes, stop: bytes, comparison: str) -> bool:
    if comparison == "<":
        return value < stop
    if comparison == "<=":
        return value <= stop
    if comparison == "=":
        return value == stop
    raise KeyNotFoundError(f"unsupported comparison {comparison!r}")
