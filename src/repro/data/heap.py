"""Heap files: the data pages that records live in.

The index stores (key value, RID) pairs; the records themselves live
here, "stored elsewhere in data pages (i.e., outside of the index
tree)" (§1.1).  Data-only locking (§2.1) makes the record lock taken
here *the* lock protecting the corresponding index keys.

Deletes are **ghosting** deletes: the record is marked invisible but
its slot and bytes stay put.  This guarantees that the undo of a
delete is always page-oriented (unghost in place) and that slots are
never reused while a delete is uncommitted — the heap-side analogue of
the care ARIES/IM takes with index-space reuse (Figure 11).

Each slot also carries ``[xmin, xmax]`` version stamps — the inserting
and deleting transaction ids — maintained by the same logged insert
and delete operations, so REDO replay reconstructs them for free and
UNDO reverts them (unghost clears xmax, slot removal erases xmin).
Snapshot readers (:mod:`repro.mvcc`) resolve visibility against the
stamps with latches only; the ghost slot *is* the old version.  Ghosts
are reclaimed only by the MVCC garbage collector's redo-only ``purge``
records, once no snapshot can need them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.common.errors import KeyNotFoundError, PageOverflowError, StorageError
from repro.common.rid import RID
from repro.locks.modes import (
    LockDuration,
    LockMode,
    data_page_lock_name,
    record_lock_name,
)
from repro.storage.page import PAGE_OVERHEAD, Page
from repro.wal.records import RM_HEAP, LogRecord, clr_record, update_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database
    from repro.txn.transaction import Transaction

#: Per-slot accounting: entry framing plus the two 9-byte (tag + i64)
#: ``[xmin, xmax]`` version stamps every occupied slot serializes.
_SLOT_OVERHEAD = 34


class HeapPage(Page):
    """Slotted data page.

    Slots hold ``(bytes, visible, xmin, xmax)`` or None.  ``xmin`` is
    the inserter's transaction id, ``xmax`` the deleter's (0 = none;
    pre-MVCC/bootstrap data is stamped ``[0, 0]``)."""

    KIND = "heap"

    def __init__(self, page_id: int, table_id: int) -> None:
        super().__init__(page_id)
        self.table_id = table_id
        self.slots: list[tuple[bytes, bool, int, int] | None] = []

    # -- serialization ------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        encoded = []
        for slot in self.slots:
            if slot is None:
                encoded.append(None)
            else:
                data, visible, xmin, xmax = slot
                encoded.append([data, visible, xmin, xmax])
        return {"table_id": self.table_id, "slots": encoded}

    @classmethod
    def from_payload(cls, page_id: int, payload: dict[str, Any]) -> "HeapPage":
        page = cls(page_id, payload["table_id"])
        for slot in payload["slots"]:
            if slot is None:
                page.slots.append(None)
            else:
                # Pre-MVCC pages encoded [data, visible]; stamp [0, 0].
                xmin = slot[2] if len(slot) > 2 else 0
                xmax = slot[3] if len(slot) > 3 else 0
                page.slots.append((slot[0], slot[1], xmin, xmax))
        return page

    def used_size(self) -> int:
        total = PAGE_OVERHEAD
        for slot in self.slots:
            total += _SLOT_OVERHEAD
            if slot is not None:
                total += len(slot[0])
        return total

    # -- record operations -----------------------------------------------------

    def has_room_for(self, data: bytes, page_size: int) -> bool:
        return self.used_size() + _SLOT_OVERHEAD + len(data) <= page_size

    def append_record(self, data: bytes, xmin: int = 0) -> int:
        self.slots.append((data, True, xmin, 0))
        return len(self.slots) - 1

    def place_record(
        self,
        slot: int,
        data: bytes,
        visible: bool = True,
        xmin: int | None = None,
        xmax: int | None = None,
    ) -> None:
        """Install a record at an exact slot (redo path).  Stamps left
        as None keep the slot's current value (0 if the slot was
        empty)."""
        while len(self.slots) <= slot:
            self.slots.append(None)
        current = self.slots[slot]
        if xmin is None:
            xmin = current[2] if current is not None else 0
        if xmax is None:
            xmax = current[3] if current is not None else 0
        self.slots[slot] = (data, visible, xmin, xmax)

    def record(self, slot: int) -> bytes:
        entry = self._entry(slot)
        if not entry[1]:
            raise KeyNotFoundError(f"record at slot {slot} is deleted")
        return entry[0]

    def set_ghost(self, slot: int, ghost: bool, xmax: int | None = None) -> bytes:
        """Ghost (stamping the deleter into xmax) or unghost (clearing
        xmax — the delete was undone)."""
        entry = self._entry(slot)
        data, _, xmin, old_xmax = entry
        if ghost:
            new_xmax = old_xmax if xmax is None else xmax
        else:
            new_xmax = 0
        self.slots[slot] = (data, not ghost, xmin, new_xmax)
        return data

    def remove_record(self, slot: int) -> bytes:
        entry = self._entry(slot)
        self.slots[slot] = None
        return entry[0]

    def is_visible(self, slot: int) -> bool:
        entry = self.slots[slot] if slot < len(self.slots) else None
        return entry is not None and entry[1]

    def version(self, slot: int) -> tuple[bytes, bool, int, int] | None:
        """The slot's full entry — data, visibility, stamps — or None.
        Snapshot readers judge visibility from the stamps; ghosts are
        returned (they are old versions), missing/purged slots are not."""
        return self.slots[slot] if 0 <= slot < len(self.slots) else None

    def _entry(self, slot: int) -> tuple[bytes, bool, int, int]:
        if slot >= len(self.slots) or self.slots[slot] is None:
            raise KeyNotFoundError(f"no record at slot {slot} of page {self.page_id}")
        return self.slots[slot]  # type: ignore[return-value]

    def visible_rids(self) -> list[RID]:
        return [
            RID(self.page_id, slot)
            for slot, entry in enumerate(self.slots)
            if entry is not None and entry[1]
        ]


class HeapFile:
    """One table's collection of data pages."""

    def __init__(self, ctx: "Database", table_id: int) -> None:
        self._ctx = ctx
        self.table_id = table_id
        self.page_ids: list[int] = []

    # -- locking helper -----------------------------------------------------------

    def lock_name_for(self, rid: RID) -> tuple:
        """The data-only lock name for a record, honouring the table's
        locking granularity (§2.1: record locks, or the data page id
        which is part of the record id for page granularity)."""
        if self._ctx.config.lock_granularity == "page":
            return data_page_lock_name(self.table_id, rid.page_id)
        return record_lock_name(self.table_id, rid)

    def _lock(self, txn: "Transaction", rid: RID, mode: LockMode) -> None:
        if txn.in_rollback:
            return
        self._ctx.locks.request(
            txn.txn_id, self.lock_name_for(rid), mode, LockDuration.COMMIT
        )

    # -- operations -------------------------------------------------------------------

    def insert(self, txn: "Transaction", data: bytes) -> RID:
        """Insert a record; X commit lock on its RID; log and apply."""
        while True:
            page = self._find_page_with_room(txn, data)
            latch = self._ctx.latches.page_latch(page.page_id)
            latch.acquire("X")
            if page.has_room_for(data, self._ctx.config.page_size):
                break
            # Another thread consumed the space between fix and latch.
            latch.release()
            self._ctx.buffer.unfix(page.page_id)
        try:
            slot = page.append_record(data, xmin=txn.txn_id)
            rid = RID(page.page_id, slot)
            self._lock(txn, rid, LockMode.X)
            record = update_record(
                txn.txn_id,
                RM_HEAP,
                "insert",
                page.page_id,
                {"rid": rid, "data": data},
            )
            lsn = self._ctx.txns.log_for(txn, record)
            page.page_lsn = lsn
            self._ctx.buffer.mark_dirty(page.page_id, lsn)
        finally:
            latch.release()
            self._ctx.buffer.unfix(page.page_id)
        self._ctx.stats.incr("heap.inserts")
        return rid

    def delete(self, txn: "Transaction", rid: RID) -> bytes:
        """Ghost a record; X commit lock on its RID; log and apply."""
        self._lock(txn, rid, LockMode.X)
        page = self._fix_heap_page(rid.page_id)
        latch = self._ctx.latches.page_latch(page.page_id)
        latch.acquire("X")
        try:
            data = page.set_ghost(rid.slot, ghost=True, xmax=txn.txn_id)
            record = update_record(
                txn.txn_id,
                RM_HEAP,
                "delete",
                page.page_id,
                {"rid": rid, "data": data},
            )
            lsn = self._ctx.txns.log_for(txn, record)
            page.page_lsn = lsn
            self._ctx.buffer.mark_dirty(page.page_id, lsn)
        finally:
            latch.release()
            self._ctx.buffer.unfix(page.page_id)
        self._ctx.stats.incr("heap.deletes")
        return data

    def fetch(self, txn: "Transaction", rid: RID, lock: bool = True) -> bytes:
        """Read a record.

        With data-only locking the index manager has already S-locked
        the record on our behalf, so index-driven fetches pass
        ``lock=False`` (§2.1: "the record manager does not have to lock
        the corresponding record during the subsequent retrieval").
        """
        if lock:
            self._lock(txn, rid, LockMode.S)
        page = self._fix_heap_page(rid.page_id)
        latch = self._ctx.latches.page_latch(page.page_id)
        latch.acquire("S")
        try:
            return page.record(rid.slot)
        finally:
            latch.release()
            self._ctx.buffer.unfix(page.page_id)

    def version(self, rid: RID) -> tuple[bytes, bool, int, int] | None:
        """Latch-only read of a slot's data and ``[xmin, xmax]`` stamps
        (the snapshot read path: **no locks**).  Returns None for a
        missing or purged slot."""
        try:
            page = self._fix_heap_page(rid.page_id)
        except StorageError:
            return None
        latch = self._ctx.latches.page_latch(rid.page_id)
        latch.acquire("S")
        try:
            return page.version(rid.slot)
        finally:
            latch.release()
            self._ctx.buffer.unfix(rid.page_id)

    def scan_rids(self) -> list[RID]:
        """All visible RIDs (no locking; used by utilities and tests)."""
        out: list[RID] = []
        for page_id in list(self.page_ids):
            page = self._fix_heap_page(page_id)
            try:
                out.extend(page.visible_rids())
            finally:
                self._ctx.buffer.unfix(page_id)
        return out

    # -- page management ---------------------------------------------------------------

    def _fix_heap_page(self, page_id: int) -> HeapPage:
        page = self._ctx.buffer.fix(page_id)  # noqa: RPR001 - ownership transfer: caller unfixes
        if not isinstance(page, HeapPage):
            self._ctx.buffer.unfix(page_id)
            raise StorageError(f"page {page_id} is not a heap page")
        return page

    def _find_page_with_room(self, txn: "Transaction", data: bytes) -> HeapPage:
        """Return a *fixed* page with room for ``data`` (newest first)."""
        page_size = self._ctx.config.page_size
        if len(data) + _SLOT_OVERHEAD + PAGE_OVERHEAD > page_size:
            raise PageOverflowError(f"record of {len(data)} bytes exceeds page size")
        for page_id in reversed(self.page_ids):
            page = self._fix_heap_page(page_id)
            if page.has_room_for(data, page_size):
                return page
            self._ctx.buffer.unfix(page_id)
        return self._format_new_page(txn)

    def _format_new_page(self, txn: "Transaction") -> HeapPage:
        page_id = self._ctx.disk.allocate_page_id()
        page = HeapPage(page_id, self.table_id)
        self._ctx.buffer.fix_new(page)  # noqa: RPR001 - ownership transfer: caller unfixes
        record = update_record(
            txn.txn_id,
            RM_HEAP,
            "format",
            page_id,
            {"table_id": self.table_id},
            undoable=False,
        )
        lsn = self._ctx.txns.log_for(txn, record)
        page.page_lsn = lsn
        self._ctx.buffer.mark_dirty(page_id, lsn)
        self.page_ids.append(page_id)
        self._ctx.stats.incr("heap.pages_formatted")
        return page


class HeapResourceManager:
    """Redo/undo handlers for heap log records."""

    def apply_redo(self, ctx: "Database", page: HeapPage, record: LogRecord) -> None:
        if record.op == "format":
            ctx.disk.ensure_allocator_above(record.page_id)
            page.table_id = record.payload["table_id"]
            page.slots = []
            return
        rid: RID = record.payload["rid"]
        if record.op == "insert":
            page.place_record(
                rid.slot,
                record.payload["data"],
                visible=True,
                xmin=record.txn_id,
                xmax=0,
            )
        elif record.op == "unghost_c":
            # Undo of a delete: the deleter's stamp comes off (xmin is
            # preserved — the original inserter's commit still governs).
            page.place_record(
                rid.slot, record.payload["data"], visible=True, xmax=0
            )
        elif record.op == "delete":
            page.place_record(
                rid.slot,
                record.payload["data"],
                visible=False,
                xmax=record.txn_id,
            )
            # Replayed deletes (restart redo, standby replay, PITR)
            # register the dead keys, same as the forward path.
            ctx.mvcc_note_dead_raw(
                page.table_id, rid, record.payload["data"], record.txn_id
            )
        elif record.op in ("remove_c", "purge"):
            while len(page.slots) <= rid.slot:
                page.slots.append(None)
            page.slots[rid.slot] = None
            if record.op == "purge":
                ctx.mvcc_forget_raw(page.table_id, rid, record.payload["data"])
        else:
            raise StorageError(f"unknown heap op {record.op!r}")

    def make_shell(self, record: LogRecord) -> HeapPage:
        return HeapPage(record.page_id, record.payload.get("table_id", 0))

    def undo(self, ctx: "Database", txn: "Transaction", record: LogRecord) -> None:
        rid: RID = record.payload["rid"]
        page = ctx.buffer.fix(record.page_id)
        latch = ctx.latches.page_latch(record.page_id)
        latch.acquire("X")
        try:
            assert isinstance(page, HeapPage)
            if record.op == "insert":
                page.remove_record(rid.slot)
                clr = clr_record(
                    txn.txn_id,
                    RM_HEAP,
                    "remove_c",
                    record.page_id,
                    {"rid": rid, "data": record.payload["data"]},
                    undo_next_lsn=record.prev_lsn,
                )
            elif record.op == "delete":
                page.set_ghost(rid.slot, ghost=False)
                clr = clr_record(
                    txn.txn_id,
                    RM_HEAP,
                    "unghost_c",
                    record.page_id,
                    {"rid": rid, "data": record.payload["data"]},
                    undo_next_lsn=record.prev_lsn,
                )
            else:
                raise StorageError(f"heap op {record.op!r} is not undoable")
            lsn = ctx.txns.log_for(txn, clr)
            page.page_lsn = lsn
            ctx.buffer.mark_dirty(record.page_id, lsn)
        finally:
            latch.release()
            ctx.buffer.unfix(record.page_id)
