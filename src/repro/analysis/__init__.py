"""Concurrency-correctness analysis suite.

Three layers of machine enforcement for the protocols the paper states
only in prose (§2.1, §4, and the WAL rule), which were previously
re-verified by eyeball on every PR:

- :mod:`repro.analysis.lint` — repo-specific AST lint (rules
  RPR001–RPR005) over the real source: latch/fix pairing, no blocking
  calls under a latch, ``page_lsn`` stamping, lock-mode constants, and
  no swallowed ``LatchError``/``CommitNotDurableError``.  Run as
  ``python -m repro.analysis lint src/``.
- :mod:`repro.analysis.lockgraph` — opt-in runtime instrumentation of
  :class:`~repro.storage.latch.Latch` recording the acquired-while-held
  graph per thread, with cycle detection over the merged graph.  The
  torture harness enables it, turning every seed sweep into a
  deadlock-freedom proof of §4's latch orderings.
- :mod:`repro.analysis.walcheck` — offline WAL verifier replaying a
  log's records and checking LSN monotonicity, ``prev_lsn`` /
  ``prev_page_lsn`` chain integrity, CLR undo-next termination,
  PREPARE→COMMIT/ABORT→END ordering, and purge-record framing.  Run as
  ``python -m repro.analysis walcheck <log-file>``.
"""

from repro.analysis.lint import LintViolation, run_lint
from repro.analysis.lockgraph import (
    LatchOrderMonitor,
    LatchOrderViolation,
)
from repro.analysis.walcheck import (
    WalCheckError,
    WalCheckReport,
    check_log,
    check_records,
    read_log_file,
    write_log_file,
)

__all__ = [
    "LintViolation",
    "run_lint",
    "LatchOrderMonitor",
    "LatchOrderViolation",
    "WalCheckError",
    "WalCheckReport",
    "check_log",
    "check_records",
    "read_log_file",
    "write_log_file",
]
