"""Runtime latch-order cycle detector (lockdep for §4's protocol).

The paper's btree does *no* latch deadlock detection: freedom is
guaranteed by the callers' ordering discipline (parent→child,
leaf→next-leaf, release-low-before-latch-high during SMO propagation,
and the tree latch above all pages).  This module turns every test run
into a proof of that discipline.

An opt-in :class:`LatchOrderMonitor` is installed with
:func:`repro.storage.latch.set_latch_monitor`.  Each unconditional,
non-re-entrant acquisition made while this thread already holds other
latches adds ``held → acquired`` edges to a shared graph.
Conditional and instant acquisitions, and re-entrant grants, are
recorded too — but as *non-blocking* edges, because a request that
cannot wait (or that is granted against the thread's own hold) can
never participate in a deadlock.  A cycle over the **blocking** edges
is exactly a latch ordering that could deadlock under the right
interleaving, even if this particular run got lucky.

The torture harness enables assertion mode, calling
:meth:`LatchOrderMonitor.assert_acyclic` after every round.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class LatchEdge:
    """One observed ordering: ``src`` was held while ``dst`` was requested."""

    src: object
    dst: object
    blocking: bool
    kind: str  # "wait" | "conditional" | "instant" | "reentrant"


class LatchOrderViolation(AssertionError):
    """A cycle over blocking edges: a potential latch deadlock."""

    def __init__(self, cycle: list[object], edges: list[LatchEdge]) -> None:
        self.cycle = cycle
        self.edges = edges
        pretty = " -> ".join(repr(n) for n in cycle)
        detail = "; ".join(
            f"{e.src!r}->{e.dst!r}[{e.kind}]" for e in edges
        )
        super().__init__(
            f"latch-order cycle (potential deadlock): {pretty} "
            f"(edges: {detail})"
        )


@dataclass
class _ThreadHolds:
    """Per-thread multiset of held latch names (order of first acquisition).

    ``owner`` is the live :class:`threading.Thread` object, not just its
    ident: a thread that dies while holding latches (legal across a
    simulated crash — its unwind path cannot release against a replaced
    latch table) leaves its holds behind, and CPython reuses the ident.
    Attributing those stale holds to the reusing thread would fabricate
    ordering edges, so the monitor discards a held-set whose owner is
    not the current thread object."""

    owner: object = None
    counts: dict[object, int] = field(default_factory=dict)
    order: list[object] = field(default_factory=list)

    def note_acquire(self, name: object) -> bool:
        """Record a grant; True if this is a fresh (0→1) hold."""
        n = self.counts.get(name, 0)
        self.counts[name] = n + 1
        if n == 0:
            self.order.append(name)
            return True
        return False

    def note_release(self, name: object) -> None:
        n = self.counts.get(name, 0)
        if n <= 1:
            self.counts.pop(name, None)
            if name in self.order:
                self.order.remove(name)
        else:
            self.counts[name] = n - 1


class LatchOrderMonitor:
    """Records the acquired-while-held graph across all threads.

    Thread-safe; one instance is meant to observe one
    :class:`~repro.db.Database` lifetime — crash/restart included,
    since orderings must hold across incarnations too.  Do *not* merge
    graphs across databases: page-id latch names are only unique
    within one database, so cross-database edges fabricate orderings
    (and potentially false cycles) between unrelated latches.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._holds: dict[int, _ThreadHolds] = {}
        # (src, dst) -> merged edge info; blocking wins over non-blocking.
        self._edges: dict[tuple[object, object], LatchEdge] = {}
        self.acquisitions = 0

    # -- hook interface (called by repro.storage.latch) ---------------------

    def note_acquire(
        self,
        name: object,
        mode: str,
        *,
        conditional: bool,
        reentrant: bool,
        instant: bool,
    ) -> None:
        """Called after a grant, while the caller owns the latch."""
        tid = threading.get_ident()
        me = threading.current_thread()
        with self._mutex:
            self.acquisitions += 1
            holds = self._holds.get(tid)
            if holds is None or holds.owner is not me:
                # Fresh thread, or the ident was reused after a thread
                # died holding latches: start a clean held-set (a dead
                # thread's holds cannot participate in a deadlock).
                holds = _ThreadHolds(owner=me)
                self._holds[tid] = holds
            held_before = [n for n in holds.order if n != name]
            fresh = holds.note_acquire(name)
            if reentrant or not fresh:
                kind = "reentrant"
            elif instant:
                kind = "instant"
            elif conditional:
                kind = "conditional"
            else:
                kind = "wait"
            blocking = kind == "wait"
            for held in held_before:
                key = (held, name)
                prior = self._edges.get(key)
                if prior is None or (blocking and not prior.blocking):
                    self._edges[key] = LatchEdge(held, name, blocking, kind)

    def note_release(self, name: object) -> None:
        tid = threading.get_ident()
        me = threading.current_thread()
        with self._mutex:
            holds = self._holds.get(tid)
            if holds is not None and holds.owner is me:
                holds.note_release(name)

    def reset_held(self) -> None:
        """Forget this thread's held-set (crash unwinding replaces the
        latch table wholesale, so releases will never arrive)."""
        tid = threading.get_ident()
        with self._mutex:
            self._holds.pop(tid, None)

    def reset_all_held(self) -> None:
        """Forget *every* thread's held-set, keeping the edges.

        Called at crash/restart boundaries: releases for latches held
        at the instant of a simulated crash never arrive (the table is
        replaced wholesale), and stale holds would fabricate ordering
        edges — potentially false cycles — out of unrelated post-crash
        work."""
        with self._mutex:
            self._holds.clear()

    # -- analysis -----------------------------------------------------------

    def edges(self, blocking_only: bool = False) -> list[LatchEdge]:
        with self._mutex:
            out = list(self._edges.values())
        if blocking_only:
            out = [e for e in out if e.blocking]
        return out

    def find_cycle(self) -> list[object] | None:
        """A cycle over blocking edges, or None.  Iterative DFS with
        colouring; returns the node sequence closing the loop."""
        adj: dict[object, list[object]] = {}
        for edge in self.edges(blocking_only=True):
            adj.setdefault(edge.src, []).append(edge.dst)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[object, int] = {}
        for root in list(adj):
            if colour.get(root, WHITE) != WHITE:
                continue
            stack: list[tuple[object, int]] = [(root, 0)]
            path: list[object] = []
            colour[root] = GREY
            path.append(root)
            while stack:
                node, i = stack[-1]
                succs = adj.get(node, [])
                if i < len(succs):
                    stack[-1] = (node, i + 1)
                    nxt = succs[i]
                    state = colour.get(nxt, WHITE)
                    if state == GREY:
                        start = path.index(nxt)
                        return path[start:] + [nxt]
                    if state == WHITE:
                        colour[nxt] = GREY
                        path.append(nxt)
                        stack.append((nxt, 0))
                else:
                    colour[node] = BLACK
                    stack.pop()
                    path.pop()
        return None

    def assert_acyclic(self) -> None:
        """Raise :class:`LatchOrderViolation` if a blocking cycle exists."""
        cycle = self.find_cycle()
        if cycle is not None:
            involved = set(cycle)
            edges = [
                e
                for e in self.edges(blocking_only=True)
                if e.src in involved and e.dst in involved
            ]
            raise LatchOrderViolation(cycle, edges)

    # -- reporting ----------------------------------------------------------

    def to_dict(self) -> dict:
        cycle = self.find_cycle()
        return {
            "acquisitions": self.acquisitions,
            "edges": [
                {
                    "src": repr(e.src),
                    "dst": repr(e.dst),
                    "blocking": e.blocking,
                    "kind": e.kind,
                }
                for e in sorted(
                    self._edges.values(), key=lambda e: (repr(e.src), repr(e.dst))
                )
            ],
            "cycle": [repr(n) for n in cycle] if cycle else None,
        }

    def dump_json(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
