"""CLI entry point: ``python -m repro.analysis <lint|walcheck> ...``."""

from __future__ import annotations

import sys

from repro.analysis import lint, walcheck


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: python -m repro.analysis {lint,walcheck} ...")
        return 2
    command, rest = argv[0], argv[1:]
    if command == "lint":
        return lint.main(rest)
    if command == "walcheck":
        return walcheck.main(rest)
    print(f"unknown command {command!r} (expected 'lint' or 'walcheck')")
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
