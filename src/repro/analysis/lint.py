"""Repo-specific AST lint: the latch/WAL protocol rules as code.

Every rule has a stable id and can be suppressed per line with a
reason::

    latch.acquire("X")  # noqa: RPR001 -- held across calls, released by smo_end

A suppression *without* a reason is itself reported (RPR000): the
acceptance bar is "no unexplained suppressions".

Rules
-----

- **RPR001** — every ``Latch.acquire`` / ``buffer.fix`` (and
  ``fix_new`` / ``latch_page``) must be paired with a ``release`` /
  ``unfix`` / ``unlatch_page`` reachable on *all* paths: the acquire
  must sit in (or be lexically followed in its block by) a
  ``try/finally`` whose ``finally`` releases, or inside a ``with``
  context expression.  Ownership transfers (a helper that returns
  holding) are exactly what the reasoned suppressions document.
- **RPR002** — no blocking call inside a statically-latched region (the
  body of a ``try`` whose ``finally`` releases a latch): log forces,
  page flushes, socket sends/receives, ``time.sleep``, thread joins,
  and condition waits without a timeout.  Latches are held for
  instructions, not I/O (§2.1).
- **RPR003** — a function that both appends a log record (``log_for``)
  and mutates page payload bytes must stamp ``page_lsn`` from the
  append's LSN and call ``mark_dirty`` before unfixing — the
  page-state-comparison invariant redo depends on (§1.2).
- **RPR004** — lock-manager ``request`` calls must use the
  :mod:`repro.locks.modes` constants, never string literals (latches
  use strings by design; locks never do).
- **RPR005** — no bare or broad ``except`` that swallows (does not
  re-raise): a handler wide enough to catch ``LatchError`` or
  ``CommitNotDurableError`` must either re-raise or carry a reasoned
  suppression.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

RULES = {
    "RPR000": "noqa suppression without a reason string",
    "RPR001": "acquire/fix without release/unfix on all paths",
    "RPR002": "blocking call inside a latched region",
    "RPR003": "page mutation logged without page_lsn stamp + mark_dirty",
    "RPR004": "lock request with a string-literal mode/duration",
    "RPR005": "bare/broad except swallowing latch or durability errors",
}

ACQUIRE_METHODS = {"acquire", "fix", "fix_new", "latch_page"}
RELEASE_METHODS = {"release", "unfix", "unlatch_page"}
LATCH_RELEASE_METHODS = {"release", "unlatch_page"}
#: Calls that synchronously block (or do I/O) — forbidden under a latch.
BLOCKING_METHODS = {
    "force",
    "force_for_commit",
    "wait_for_flush",
    "flush_page",
    "flush_all",
    "sleep",
    "join",
    "recv",
    "send",
    "sendall",
    "accept",
    "connect",
}
#: Page-payload mutators (heap and index pages).
MUTATOR_METHODS = {
    "append_record",
    "place_record",
    "set_ghost",
    "remove_record",
    "insert_key",
    "remove_key",
    "insert_split_entry",
    "remove_child",
    "load_payload",
}
BROAD_EXCEPTIONS = {"Exception", "BaseException"}
GUARDED_EXCEPTIONS = {"LatchError", "CommitNotDurableError"}

_NOQA_RE = re.compile(
    r"#\s*noqa:\s*(?P<codes>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)"
    r"(?P<rest>[^\n]*)"
)


@dataclass(frozen=True)
class LintViolation:
    """One finding: ``path:line: rule message``."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class _Suppression:
    codes: set[str]
    has_reason: bool
    used: bool = False


def _parse_suppressions(source: str) -> dict[int, _Suppression]:
    """Per physical line: the RPR codes suppressed there (codes of
    other linters, e.g. ruff's BLE001, ride along and are ignored)."""
    out: dict[int, _Suppression] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = {c.strip() for c in match.group("codes").split(",")}
        rpr = {c for c in codes if c.startswith("RPR")}
        if not rpr:
            continue
        rest = match.group("rest").strip()
        has_reason = bool(re.match(r"^-{1,2}\s*\S", rest))
        out[lineno] = _Suppression(codes=rpr, has_reason=has_reason)
    return out


class _FileLinter:
    """Lints one parsed module."""

    def __init__(self, path: str, tree: ast.Module, source: str) -> None:
        self.path = path
        self.tree = tree
        self.suppressions = _parse_suppressions(source)
        self.violations: list[LintViolation] = []
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node

    # -- helpers -----------------------------------------------------------

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        suppression = self.suppressions.get(line)
        if suppression is not None and rule in suppression.codes:
            suppression.used = True
            return
        self.violations.append(LintViolation(rule, self.path, line, message))

    def _statement_of(self, node: ast.AST) -> ast.stmt:
        """The innermost statement containing ``node``."""
        current = node
        while not isinstance(current, ast.stmt):
            current = self.parents[current]
        return current

    def _block_of(self, stmt: ast.stmt) -> list[ast.stmt] | None:
        """The statement list that directly contains ``stmt``."""
        parent = self.parents.get(stmt)
        if parent is None:
            return None
        for name in ("body", "orelse", "finalbody", "handlers"):
            block = getattr(parent, name, None)
            if isinstance(block, list) and stmt in block:
                return block
        # Statements inside an ExceptHandler live in its body.
        if isinstance(parent, ast.ExceptHandler) and stmt in parent.body:
            return parent.body
        return None

    @staticmethod
    def _contains_release(nodes: Iterable[ast.stmt], names: set[str]) -> bool:
        for stmt in nodes:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in names
                ):
                    return True
        return False

    # -- RPR001 ------------------------------------------------------------

    def check_acquire_pairing(self) -> None:
        for node in ast.walk(self.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ACQUIRE_METHODS
            ):
                continue
            if self._acquire_is_paired(node):
                continue
            self.report(
                "RPR001",
                node,
                f"{node.func.attr}() has no release/unfix on all paths "
                "(use try/finally or a context manager)",
            )

    def _acquire_is_paired(self, call: ast.Call) -> bool:
        # Inside a `with` item's context expression: the manager pairs.
        node: ast.AST = call
        while node in self.parents:
            parent = self.parents[node]
            if isinstance(parent, (ast.With, ast.AsyncWith)) and any(
                item is node
                or item.context_expr is node
                or node in ast.walk(item.context_expr)
                for item in parent.items
            ):
                return True
            if isinstance(parent, ast.stmt):
                break
            node = parent
        stmt = self._statement_of(call)
        # Walk outward: satisfied by an enclosing try whose finally
        # releases, or by a later sibling try-with-release in any
        # enclosing block (the `acquire(); try: ... finally: release()`
        # idiom, including acquire inside a retry loop).
        current: ast.AST = stmt
        while True:
            parent = self.parents.get(current)
            if parent is None or isinstance(
                parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
            ):
                block = getattr(parent, "body", None)
                if block is not None and self._later_try_releases(
                    current, block
                ):
                    return True
                return False
            if (
                isinstance(parent, ast.Try)
                and current in parent.body
                and self._contains_release(parent.finalbody, RELEASE_METHODS)
            ):
                return True
            if isinstance(current, ast.stmt):
                block = self._block_of(current)
                if block is not None and self._later_try_releases(
                    current, block
                ):
                    return True
            current = parent

    def _later_try_releases(
        self, stmt: ast.AST, block: list[ast.stmt]
    ) -> bool:
        if stmt not in block:
            return False
        index = block.index(stmt)  # type: ignore[arg-type]
        for later in block[index + 1 :]:
            if isinstance(later, ast.Try) and self._contains_release(
                later.finalbody, RELEASE_METHODS
            ):
                return True
        return False

    # -- RPR002 ------------------------------------------------------------

    def check_blocking_under_latch(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Try):
                continue
            if not self._contains_release(
                node.finalbody, LATCH_RELEASE_METHODS
            ):
                continue
            for call in self._calls_in(node.body):
                blocking = self._blocking_reason(call)
                if blocking:
                    self.report(
                        "RPR002",
                        call,
                        f"{blocking} inside a latched region "
                        "(latches are held for instructions, not I/O)",
                    )

    @staticmethod
    def _calls_in(stmts: list[ast.stmt]) -> Iterable[ast.Call]:
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    break
                if isinstance(node, ast.Call):
                    yield node

    @staticmethod
    def _blocking_reason(call: ast.Call) -> str | None:
        if not isinstance(call.func, ast.Attribute):
            return None
        attr = call.func.attr
        if attr in BLOCKING_METHODS:
            return f"blocking call {attr}()"
        if attr in ("wait", "wait_for"):
            has_timeout = any(k.arg == "timeout" for k in call.keywords)
            limit = 1 if attr == "wait" else 2
            if len(call.args) >= limit:
                has_timeout = True
            if not has_timeout:
                return f"untimed {attr}()"
        return None

    # -- RPR003 ------------------------------------------------------------

    def check_page_lsn_stamp(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            logs = False
            mutates: str | None = None
            stamps = False
            dirties = False
            for child in ast.walk(node):
                if isinstance(child, ast.Call) and isinstance(
                    child.func, ast.Attribute
                ):
                    attr = child.func.attr
                    if attr == "log_for":
                        logs = True
                    elif attr in MUTATOR_METHODS:
                        mutates = mutates or f"{attr}()"
                    elif attr == "mark_dirty":
                        dirties = True
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr == "page_lsn"
                        ):
                            stamps = True
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Attribute)
                            and target.value.attr == "slots"
                        ):
                            mutates = mutates or "slots[...] assignment"
            if logs and mutates and not (stamps and dirties):
                missing = []
                if not stamps:
                    missing.append("page_lsn stamp")
                if not dirties:
                    missing.append("mark_dirty call")
                self.report(
                    "RPR003",
                    node,
                    f"{node.name}() logs and mutates pages ({mutates}) "
                    f"but lacks a {' and '.join(missing)}",
                )

    # -- RPR004 ------------------------------------------------------------

    def check_lock_mode_constants(self) -> None:
        for node in ast.walk(self.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "request"
            ):
                continue
            receiver = node.func.value
            is_lock_manager = (
                isinstance(receiver, ast.Attribute) and receiver.attr == "locks"
            ) or (isinstance(receiver, ast.Name) and receiver.id == "locks")
            if not is_lock_manager:
                continue
            literal_args = [
                arg
                for arg in list(node.args[2:])
                + [k.value for k in node.keywords if k.arg in ("mode", "duration")]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            ]
            for arg in literal_args:
                self.report(
                    "RPR004",
                    arg,
                    f"lock request with string literal {arg.value!r} "
                    "(use locks.modes constants)",
                )

    # -- RPR005 ------------------------------------------------------------

    def check_broad_except(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = self._broad_label(node.type)
            if label is None:
                continue
            if any(
                isinstance(sub, ast.Raise)
                for stmt in node.body
                for sub in ast.walk(stmt)
            ):
                continue
            self.report(
                "RPR005",
                node,
                f"{label} swallows LatchError/CommitNotDurableError "
                "(re-raise, narrow the type, or document why)",
            )

    @staticmethod
    def _broad_label(type_node: ast.expr | None) -> str | None:
        def name_of(node: ast.expr) -> str | None:
            if isinstance(node, ast.Name):
                return node.id
            if isinstance(node, ast.Attribute):
                return node.attr
            return None

        if type_node is None:
            return "bare except"
        names = []
        if isinstance(type_node, ast.Tuple):
            names = [name_of(e) for e in type_node.elts]
        else:
            names = [name_of(type_node)]
        for name in names:
            if name in BROAD_EXCEPTIONS:
                return f"except {name}"
            if name in GUARDED_EXCEPTIONS:
                return f"except {name}"
        return None

    # -- driver ------------------------------------------------------------

    def run(self) -> list[LintViolation]:
        self.check_acquire_pairing()
        self.check_blocking_under_latch()
        self.check_page_lsn_stamp()
        self.check_lock_mode_constants()
        self.check_broad_except()
        for line, suppression in self.suppressions.items():
            if suppression.used and not suppression.has_reason:
                self.violations.append(
                    LintViolation(
                        "RPR000",
                        self.path,
                        line,
                        "suppression without a reason "
                        "(write `# noqa: RPR00x -- why`)",
                    )
                )
        self.violations.sort(key=lambda v: (v.path, v.line, v.rule))
        return self.violations


@dataclass
class LintReport:
    """All findings over a set of paths."""

    violations: list[LintViolation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        lines = [v.format() for v in self.violations]
        lines.append(
            f"{len(self.violations)} finding(s) in "
            f"{self.files_checked} file(s)"
        )
        return "\n".join(lines)


def _python_files(paths: Iterable[str | Path]) -> list[Path]:
    out: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    return out


def run_lint(paths: Iterable[str | Path]) -> LintReport:
    """Lint every ``.py`` file under ``paths``; returns the report."""
    report = LintReport()
    for path in _python_files(paths):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            report.violations.append(
                LintViolation(
                    "RPR000", str(path), exc.lineno or 0, f"syntax error: {exc.msg}"
                )
            )
            continue
        report.files_checked += 1
        report.violations.extend(_FileLinter(str(path), tree, source).run())
    return report


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: python -m repro.analysis lint <paths...>")
        return 2
    report = run_lint(argv)
    print(report.format())
    return 0 if report.ok else 1
