"""Offline WAL verifier: replay a log's records and check its invariants.

The log is the database — so a log that violates its own framing
invariants is a latent recovery bug regardless of whether any test
happened to trip over it.  This verifier checks, record by record:

- **LSN monotonicity** — LSNs strictly increase (they are byte
  positions in this implementation, so a violation means a torn or
  hand-mangled stream).
- **prev_lsn chains** — every transaction's records form a backward
  chain; each record's ``prev_lsn`` is exactly the transaction's
  previous record (or pre-truncation / NULL for its first).
- **prev_page_lsn chains** (PR 4) — every redoable record's
  ``prev_page_lsn`` is the page's previous redoable record, NULL (a
  fresh chain: crash clears the volatile chain map for clean pages),
  or pre-truncation.  A non-NULL in-range value that is *not* the
  page's latest record is a broken chain.
- **CLR undo-next termination** — a CLR's ``undo_next_lsn`` is NULL or
  strictly behind its own LSN, and names a record of its own
  transaction when in range.
- **Transaction state ordering** — PREPARE → COMMIT/ROLLBACK → END per
  transaction (presumed-abort means a missing END is fine, a *second*
  END never is); after COMMIT only END; nothing after END.  Restart
  losers log CLRs then END with no ROLLBACK record — allowed.
- **Purge framing** (PR 6) — ``op == "purge"`` records are redo-only
  (``undoable=False``) and live in a system transaction that does
  nothing else and never rolls back.

Run as ``python -m repro.analysis walcheck <log-file>`` on a file
written by :func:`write_log_file`, or call :func:`check_log` on a live
:class:`~repro.wal.log.LogManager` (the torture harness does, at the
end of every round, on the surviving log).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.common.errors import CorruptLogError, ReproError
from repro.wal.records import NULL_LSN, LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.wal.log import LogManager

#: File header for dumped logs: magic, then the stream's first LSN.
MAGIC = b"RPRWAL1\x00"

#: Record kinds outside any transaction's prev_lsn chain: checkpoints
#: and 2PC coordinator records are logged with txn_id 0.
_UNCHAINED_KINDS = frozenset(
    {
        RecordKind.CKPT_BEGIN,
        RecordKind.CKPT_END,
        RecordKind.COORD_COMMIT,
        RecordKind.COORD_ABORT,
        RecordKind.COORD_END,
    }
)


class WalCheckError(ReproError):
    """Raised by :func:`check_log` / CLI when a log fails verification."""


@dataclass(frozen=True)
class WalCheckFinding:
    lsn: int
    message: str

    def format(self) -> str:
        return f"lsn {self.lsn}: {self.message}"


@dataclass
class WalCheckReport:
    """Outcome of one verification pass."""

    records_checked: int = 0
    transactions_seen: int = 0
    first_lsn: int = 1
    findings: list[WalCheckFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, lsn: int, message: str) -> None:
        self.findings.append(WalCheckFinding(lsn, message))

    def format(self) -> str:
        lines = [f.format() for f in self.findings]
        verdict = "OK" if self.ok else f"{len(self.findings)} finding(s)"
        lines.append(
            f"walcheck: {verdict} — {self.records_checked} record(s), "
            f"{self.transactions_seen} transaction(s), "
            f"first LSN {self.first_lsn}"
        )
        return "\n".join(lines)


@dataclass
class _TxnState:
    last_lsn: int
    #: "active" → "prepared" → "committed"/"aborted" → "ended"
    status: str = "active"
    has_purge: bool = False
    has_other_work: bool = False


def check_records(
    records: Iterable[LogRecord], first_lsn: int = 1
) -> WalCheckReport:
    """Verify a record stream.  ``first_lsn`` is the truncation point:
    backward references below it point into the discarded prefix and
    are accepted on faith."""
    report = WalCheckReport(first_lsn=first_lsn)
    txns: dict[int, _TxnState] = {}
    page_tail: dict[int, int] = {}  # page_id -> latest redoable LSN
    page_seen: dict[int, set[int]] = {}  # page_id -> all redoable LSNs
    lsn_txn: dict[int, int] = {}  # in-range LSN -> txn_id
    last_lsn = first_lsn - 1
    ckpt_open = 0

    for record in records:
        report.records_checked += 1
        lsn = record.lsn

        # -- monotonicity --------------------------------------------------
        if lsn <= last_lsn:
            report.add(lsn, f"LSN not increasing (previous was {last_lsn})")
        last_lsn = max(last_lsn, lsn)

        # -- checkpoint bracketing ----------------------------------------
        if record.kind is RecordKind.CKPT_BEGIN:
            ckpt_open += 1
        elif record.kind is RecordKind.CKPT_END:
            if ckpt_open == 0:
                report.add(lsn, "CKPT_END without an open CKPT_BEGIN")
            else:
                ckpt_open -= 1

        chained = record.txn_id != 0 and record.kind not in _UNCHAINED_KINDS
        if chained:
            lsn_txn[lsn] = record.txn_id
            state = txns.get(record.txn_id)

            # -- prev_lsn chain -------------------------------------------
            if state is None:
                report.transactions_seen += 1
                if record.prev_lsn != NULL_LSN and record.prev_lsn >= first_lsn:
                    report.add(
                        lsn,
                        f"txn {record.txn_id} first record has in-range "
                        f"prev_lsn {record.prev_lsn} (expected NULL or "
                        "pre-truncation)",
                    )
                state = txns[record.txn_id] = _TxnState(last_lsn=lsn)
            else:
                if record.prev_lsn != state.last_lsn:
                    report.add(
                        lsn,
                        f"txn {record.txn_id} prev_lsn {record.prev_lsn} "
                        f"breaks the chain (previous record was "
                        f"{state.last_lsn})",
                    )
                state.last_lsn = lsn

            _check_txn_ordering(report, record, state)
            _check_purge_framing(report, record, state)

        # -- prev_page_lsn chain ------------------------------------------
        if record.is_redoable:
            page_id = record.page_id
            prev = record.prev_page_lsn
            tail = page_tail.get(page_id)
            if prev != NULL_LSN and prev >= first_lsn and prev != tail:
                if prev in page_seen.get(page_id, ()):
                    report.add(
                        lsn,
                        f"page {page_id} prev_page_lsn {prev} is stale "
                        f"(page's latest record is {tail})",
                    )
                else:
                    report.add(
                        lsn,
                        f"page {page_id} prev_page_lsn {prev} names no "
                        f"record of this page (latest is {tail})",
                    )
            page_tail[page_id] = lsn
            page_seen.setdefault(page_id, set()).add(lsn)

        # -- CLR undo-next termination ------------------------------------
        if record.is_clr:
            undo_next = record.undo_next_lsn
            if undo_next is not None and undo_next != NULL_LSN:
                if undo_next >= lsn:
                    report.add(
                        lsn,
                        f"CLR undo_next_lsn {undo_next} does not go "
                        "backward (chain cannot terminate)",
                    )
                elif (
                    undo_next in lsn_txn
                    and lsn_txn[undo_next] != record.txn_id
                ):
                    report.add(
                        lsn,
                        f"CLR undo_next_lsn {undo_next} names a record of "
                        f"txn {lsn_txn[undo_next]}, not txn {record.txn_id}",
                    )

    if ckpt_open:
        # An in-flight checkpoint at end-of-log is normal (crash during
        # checkpoint); only unbalanced ENDs are findings.
        pass
    return report


def _check_txn_ordering(
    report: WalCheckReport, record: LogRecord, state: _TxnState
) -> None:
    lsn, kind, txn_id = record.lsn, record.kind, record.txn_id
    if state.status == "ended":
        report.add(lsn, f"txn {txn_id}: {kind.value} record after END")
        return
    if kind is RecordKind.PREPARE:
        if state.status != "active":
            report.add(lsn, f"txn {txn_id}: PREPARE while {state.status}")
        else:
            state.status = "prepared"
    elif kind is RecordKind.COMMIT:
        if state.status not in ("active", "prepared"):
            report.add(lsn, f"txn {txn_id}: COMMIT while {state.status}")
        state.status = "committed"
    elif kind is RecordKind.ROLLBACK:
        if state.status not in ("active", "prepared"):
            report.add(lsn, f"txn {txn_id}: ROLLBACK while {state.status}")
        state.status = "aborted"
    elif kind is RecordKind.END:
        # END from "active" is legal: restart losers get CLRs then END
        # with no ROLLBACK record (presumed abort), and a committed or
        # rolled-back txn ENDs normally.
        state.status = "ended"
    elif kind in (RecordKind.UPDATE, RecordKind.CLR, RecordKind.DUMMY_CLR):
        # Updates belong to the forward phase; CLRs to rollback.  Both
        # can legally appear while "active" (partial rollbacks, restart
        # undo before any ROLLBACK record) or "aborted", but a
        # committed txn writes nothing except its END.
        if state.status == "committed":
            report.add(lsn, f"txn {txn_id}: {kind.value} after COMMIT")
        elif state.status == "prepared" and kind is RecordKind.UPDATE:
            report.add(lsn, f"txn {txn_id}: UPDATE after PREPARE")


def _check_purge_framing(
    report: WalCheckReport, record: LogRecord, state: _TxnState
) -> None:
    lsn, txn_id = record.lsn, record.txn_id
    if record.kind is RecordKind.UPDATE and record.op == "purge":
        if record.undoable:
            report.add(lsn, f"txn {txn_id}: purge record marked undoable")
        state.has_purge = True
    elif record.kind in (
        RecordKind.UPDATE,
        RecordKind.CLR,
        RecordKind.DUMMY_CLR,
    ):
        state.has_other_work = True
    elif record.kind is RecordKind.ROLLBACK and state.has_purge:
        report.add(
            lsn, f"txn {txn_id}: purge system txn must never roll back"
        )
    if state.has_purge and state.has_other_work:
        report.add(
            lsn,
            f"txn {txn_id}: purge records mixed with other work "
            "(purges ride a dedicated system txn)",
        )
        state.has_other_work = False  # report once


def check_log(log: "LogManager") -> WalCheckReport:
    """Verify a live :class:`~repro.wal.log.LogManager`'s full
    in-memory stream from its truncation point."""
    first = log.truncation_point
    return check_records(log.records(first), first_lsn=first)


# -- dump-file format --------------------------------------------------------


def write_log_file(log: "LogManager", path: str | Path) -> int:
    """Dump the log's surviving stream (magic + first LSN + raw CRC
    frames) for offline checking; returns the byte count written."""
    first = log.truncation_point
    raw = log.raw_slice(first)
    data = MAGIC + struct.pack("<Q", first) + raw
    Path(path).write_bytes(data)
    return len(data)


def read_log_file(path: str | Path) -> tuple[int, list[LogRecord]]:
    """Parse a dump back into records.  Also accepts a bare frame
    stream (no header), assuming first LSN 1.  Parsing stops cleanly at
    a torn tail, exactly like live-log iteration."""
    data = Path(path).read_bytes()
    if data.startswith(MAGIC):
        (first_lsn,) = struct.unpack_from("<Q", data, len(MAGIC))
        stream = data[len(MAGIC) + 8 :]
    else:
        first_lsn = 1
        stream = data
    records: list[LogRecord] = []
    offset = 0
    while offset < len(stream):
        try:
            record, next_offset = LogRecord.from_bytes(stream, offset)
        except CorruptLogError:
            break
        record.lsn = first_lsn + offset
        records.append(record)
        offset = next_offset
    return first_lsn, records


def check_file(path: str | Path) -> WalCheckReport:
    first_lsn, records = read_log_file(path)
    return check_records(records, first_lsn=first_lsn)


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.analysis walcheck <log-file>")
        return 2
    report = check_file(argv[0])
    print(report.format())
    return 0 if report.ok else 1
