"""Stable hash partitioning of user keys across shards.

Python's built-in ``hash`` is salted per process, so the router, the
shards, and any subprocess workers must share a deterministic function
instead: CRC-32 over a canonical byte form of the key.  Whatever
process computes it, one key always lands on one shard.
"""

from __future__ import annotations

import zlib


def key_bytes(key: object) -> bytes:
    """Canonical byte form of a routable user key."""
    if isinstance(key, bool):
        return b"z1" if key else b"z0"
    if isinstance(key, int):
        return b"i%d" % key
    if isinstance(key, bytes):
        return b"b" + key
    if isinstance(key, float):
        return b"f" + repr(key).encode("ascii")
    return b"s" + str(key).encode("utf-8")


def shard_for_key(key: object, num_shards: int) -> int:
    """The shard index owning ``key`` (stable across processes)."""
    return zlib.crc32(key_bytes(key)) % num_shards
