"""Standalone shard process: ``python -m repro.cluster.shard_proc``.

The E18 benchmark (and anyone wanting real multi-core scaling) runs
each shard in its own OS process so the shards' Python interpreters
don't share one GIL.  The process starts an in-memory
:class:`~repro.db.Database` behind a TCP
:class:`~repro.server.server.DatabaseServer`, prints a single
``READY <port>`` line on stdout, then serves until stdin reaches EOF
(the parent closing the pipe is the shutdown signal — robust even if
the parent dies without cleanup).

Usage::

    python -m repro.cluster.shard_proc [--port 0] [--workers 4]
"""

from __future__ import annotations

import argparse
import sys

from repro.common.config import DatabaseConfig
from repro.db import Database
from repro.server.server import DatabaseServer, ServerConfig


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=0, help="TCP port (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=4, help="executor pool size")
    parser.add_argument(
        "--tables",
        default="t:by_id:id",
        help="comma-separated table:index:column[:unique] triples to pre-create",
    )
    args = parser.parse_args(argv)

    db = Database(
        DatabaseConfig(
            group_commit=True,
            group_commit_max_wait_seconds=0.001,
            lock_timeout_seconds=2.0,
        )
    )
    for spec in filter(None, args.tables.split(",")):
        parts = spec.split(":")
        if len(parts) < 3:
            parser.error(f"bad table spec {spec!r} (want table:index:column)")
        table, index, column = parts[:3]
        unique = len(parts) > 3 and parts[3] == "unique"
        db.create_table(table)
        db.create_index(table, index, column=column, unique=unique)

    server = DatabaseServer(
        db,
        ServerConfig(
            port=args.port,
            workers=args.workers,
            queue_depth=args.workers * 8,
            request_timeout_seconds=30.0,
            drain_timeout_seconds=5.0,
        ),
    ).start(listen=True)
    print(f"READY {server.address[1]}", flush=True)

    # Serve until the parent closes our stdin.
    sys.stdin.read()
    server.shutdown(drain=False, checkpoint=False)
    db.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
