"""Cluster-aware client: one session per shard plus the 2PC driver.

Routing is per-key (:func:`~repro.cluster.routing.shard_for_key`); an
operation outside an explicit transaction goes straight to the owning
shard as autocommit — indistinguishable from talking to that shard
directly.  Inside a transaction, the client lazily ``begin``\\ s on each
shard it touches; at commit time:

- **0 or 1 shards touched** → plain single-shard commit.  No PREPARE,
  no coordinator record, no extra round trip: the zero-overhead path.
- **2+ shards touched** → two-phase commit.  Phase 1 runs on the
  *owning sessions* (a PREPARE vote is an operation on the session's
  open transaction); the coordinator then forces the commit decision
  (the commit point); phase 2 delivers ``decide`` to each participant
  best-effort — a participant that misses it is re-driven by
  coordinator recovery, because the forced decision record names it.

Any phase-1 failure, and any failure to make the decision durable,
resolves to a **definite abort** (:class:`TwoPhaseAbortError`): under
presumed abort no participant can have committed without a durable
coordinator decision.

Like :class:`~repro.server.client.DatabaseClient`, instances are not
thread-safe — one per worker thread.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from repro.common.errors import (
    ServerError,
    SessionStateError,
    TwoPhaseAbortError,
)
from repro.cluster.coordinator import (
    DECISION_ABORT,
    DECISION_COMMIT,
    Coordinator,
)
from repro.cluster.routing import shard_for_key
from repro.server.client import DatabaseClient
from repro.txn.manager import VOTE_READ_ONLY, VOTE_YES


class ClusterClient:
    """One logical session against a sharded cluster."""

    def __init__(
        self,
        shard_clients: list[DatabaseClient],
        coordinator: Coordinator,
        key_column: str = "id",
    ) -> None:
        if not shard_clients:
            raise SessionStateError("a cluster needs at least one shard")
        self._shards = shard_clients
        self._coordinator = coordinator
        self.key_column = key_column
        self._txn_open = False
        #: Shard indexes with a remote transaction begun this txn.
        self._touched: list[int] = []
        #: Gid of the last two-phase commit this client drove (tests).
        self.last_gid: str | None = None

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    # -- routing -------------------------------------------------------------

    def shard_for(self, key: object) -> int:
        return shard_for_key(key, len(self._shards))

    def _session(self, index: int) -> DatabaseClient:
        """The shard session, with the lazy per-shard BEGIN applied."""
        client = self._shards[index]
        if self._txn_open and index not in self._touched:
            client.begin()
            self._touched.append(index)
        return client

    def _routed(self, key: object) -> DatabaseClient:
        return self._session(self.shard_for(key))

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        if self._txn_open:
            raise SessionStateError("transaction already open in this session")
        self._txn_open = True
        self._touched = []

    def rollback(self) -> None:
        if not self._txn_open:
            raise SessionStateError("no transaction open in this session")
        touched, self._touched = self._touched, []
        self._txn_open = False
        for index in touched:
            try:
                self._shards[index].rollback()
            except ServerError:
                pass  # already aborted shard-side, or shard gone

    def commit(self) -> None:
        if not self._txn_open:
            raise SessionStateError("no transaction open in this session")
        touched, self._touched = self._touched, []
        self._txn_open = False
        if not touched:
            return
        if len(touched) == 1:
            # Single-shard: an ordinary commit, zero 2PC overhead.
            self._shards[touched[0]].commit()
            return
        self._commit_two_phase(touched)

    @contextmanager
    def transaction(self) -> Iterator[None]:
        self.begin()
        try:
            yield
        except BaseException:
            try:
                self.rollback()
            except ServerError:
                pass
            raise
        else:
            self.commit()

    # -- two-phase commit ----------------------------------------------------

    def _commit_two_phase(self, touched: list[int]) -> None:
        gid = self._coordinator.new_gid()
        self.last_gid = gid
        participants: list[int] = []
        # Phase 1: collect votes on the owning sessions.
        for index in touched:
            try:
                vote = self._shards[index].prepare(gid)
            except Exception as exc:  # noqa: BLE001 - any failure is a no vote
                self._abort_global(gid, touched, participants, failed=index)
                raise TwoPhaseAbortError(
                    f"global transaction {gid} aborted: shard {index} "
                    f"failed to prepare ({exc})"
                ) from exc
            if vote == VOTE_YES:
                participants.append(index)
            elif vote != VOTE_READ_ONLY:
                self._abort_global(gid, touched, participants, failed=index)
                raise TwoPhaseAbortError(
                    f"global transaction {gid} aborted: shard {index} "
                    f"voted {vote!r}"
                )
        if not participants:
            return  # every branch was read-only; nothing to decide
        if len(participants) == 1:
            # Everyone else was read-only: the lone writer can commit
            # directly — its own commit record is the decision.
            self._shards[participants[0]].decide(gid, DECISION_COMMIT)
            return
        # The commit point: force the decision on the coordinator log.
        try:
            self._coordinator.decide_commit(gid, participants)
        except Exception as exc:  # noqa: BLE001 - not durable ⇒ presumed abort
            self._abort_global(gid, [], participants)
            raise TwoPhaseAbortError(
                f"global transaction {gid} aborted: coordinator decision "
                f"not durable ({exc})"
            ) from exc
        # Phase 2 (best effort): recovery re-drives any miss.
        complete = True
        for index in participants:
            try:
                self._shards[index].decide(gid, DECISION_COMMIT)
            except Exception:  # noqa: BLE001,RPR005 - shard will learn at recovery
                complete = False
        if complete:
            self._coordinator.note_ended(gid)

    def _abort_global(
        self,
        gid: str,
        touched: list[int],
        participants: list[int],
        failed: int | None = None,
    ) -> None:
        """Presumed abort cleanup: tell prepared participants to abort,
        roll back branches never prepared.  All best effort — a branch
        that cannot be reached resolves to abort at recovery anyway."""
        self._coordinator.decide_abort(gid)
        for index in participants:
            try:
                self._shards[index].decide(gid, DECISION_ABORT)
            except Exception:  # noqa: BLE001,RPR005 - 2PC decision already durable; shard learns at recovery
                pass
        for index in touched:
            if index in participants or index == failed:
                continue
            try:
                self._shards[index].rollback()
            except Exception:  # noqa: BLE001,RPR005 - 2PC decision already durable; shard learns at recovery
                pass
        # The failing shard may still hold its (unprepared) branch open.
        if failed is not None:
            try:
                self._shards[failed].rollback()
            except Exception:  # noqa: BLE001,RPR005 - 2PC decision already durable; shard learns at recovery
                pass

    # -- data ops ------------------------------------------------------------

    def insert(self, table: str, row: dict) -> dict:
        return self._routed(row[self.key_column]).insert(table, row)

    def fetch(self, table: str, index: str, key: object, isolation: str = "rr"):
        return self._routed(key).fetch(table, index, key, isolation=isolation)

    def delete_by_key(self, table: str, index: str, key: object) -> dict:
        return self._routed(key).delete_by_key(table, index, key)

    def fetch_prefix(self, table: str, index: str, prefix: object):
        """Partial-key fetch cannot be routed (the full key is what
        hashes): fan out and return the match with the smallest key."""
        best = None
        for index_ in range(len(self._shards)):
            row = self._session(index_).fetch_prefix(table, index, prefix)
            if row is None:
                continue
            if best is None or self._row_key(row) < self._row_key(best):
                best = row
        return best

    def scan(
        self,
        table: str,
        index: str,
        low: object | None = None,
        high: object | None = None,
        limit: int | None = None,
        **kwargs: object,
    ) -> list[dict]:
        """Fan out to every shard and merge (sorted by the key column
        when present, so the result reads like a single-node scan)."""
        rows: list[dict] = []
        for index_ in range(len(self._shards)):
            rows.extend(
                self._session(index_).scan(
                    table, index, low=low, high=high, limit=limit, **kwargs
                )
            )
        try:
            rows.sort(key=self._row_key)
        except TypeError:
            pass  # mixed key types: leave shard order
        if limit is not None:
            rows = rows[:limit]
        return rows

    def _row_key(self, row: dict):
        return row.get(self.key_column)

    # -- admin ---------------------------------------------------------------

    def create_table(self, name: str) -> None:
        for client in self._shards:
            client.create_table(name)

    def create_index(
        self, table: str, name: str, column: str, unique: bool = False
    ) -> None:
        for client in self._shards:
            client.create_index(table, name, column=column, unique=unique)

    def ping(self) -> bool:
        return all(client.ping() for client in self._shards)

    def server_stats(self, prefix: str = "") -> dict[str, int]:
        """Numeric stats summed across the shards."""
        merged: dict[str, int] = {}
        for client in self._shards:
            for key, value in client.server_stats(prefix).items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def server_status(self) -> dict:
        states = [client.server_status() for client in self._shards]
        recovering = any(s.get("recovering") for s in states)
        return {
            "state": "recovering" if recovering else "steady",
            "recovering": recovering,
            "shards": states,
        }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        for client in self._shards:
            try:
                client.close()
            except Exception:  # noqa: BLE001,RPR005 - a dead shard must not block close
                pass

    @property
    def closed(self) -> bool:
        return any(client.closed for client in self._shards)

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def make_cluster_client(
    connect_shards: list[Callable[[], DatabaseClient]],
    coordinator: Coordinator,
    key_column: str = "id",
) -> ClusterClient:
    """Build a client from per-shard connect callables (one fresh
    session per shard)."""
    return ClusterClient(
        [connect() for connect in connect_shards], coordinator, key_column
    )
