"""Horizontal sharding with two-phase commit (presumed abort).

The key space is hash-partitioned across N independent
:class:`~repro.db.Database` shards, each served by its own
:class:`~repro.server.server.DatabaseServer`.  A
:class:`~repro.cluster.client.ClusterClient` routes every operation to
the owning shard; a transaction that touched one shard commits exactly
as before (zero added overhead), while a cross-shard transaction runs
two-phase commit against a :class:`~repro.cluster.coordinator.Coordinator`
whose own WAL makes the commit decision durable.  The
:class:`~repro.cluster.router.ShardRouter` front-end speaks the
existing wire protocol so an unmodified
:class:`~repro.server.client.DatabaseClient` can talk to the whole
cluster through one address.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.cluster import Cluster
from repro.cluster.coordinator import Coordinator
from repro.cluster.router import ShardRouter
from repro.cluster.routing import shard_for_key

__all__ = [
    "Cluster",
    "ClusterClient",
    "Coordinator",
    "ShardRouter",
    "shard_for_key",
]
