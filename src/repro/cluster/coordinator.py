"""The two-phase-commit coordinator and its decision log.

Presumed abort (the protocol of the transaction-management literature
ARIES belongs to): the coordinator force-writes **only commit
decisions**.  No record means abort — a shard restarting with an
in-doubt PREPARE asks the coordinator, and any global transaction
without a durable ``COORD_COMMIT`` resolves to abort.  That asymmetry
is what keeps the single-shard fast path free: nothing is ever logged
for a transaction that never reached a commit decision, abort records
are advisory (unforced), and the ``COORD_END`` completion marker is
lazy — it only saves recovery from re-pushing a decision every
participant already applied.

The coordinator's log is an ordinary :class:`~repro.wal.log.LogManager`
(same CRC framing, group commit, crash/halt semantics as a shard's
WAL), so concurrent commit decisions coalesce into batched flushes and
the torture harness can crash it inside the flush window like any
other log.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable

from repro.common.errors import LogHaltedError
from repro.common.stats import StatsRegistry
from repro.server.client import DatabaseClient
from repro.wal.log import LogManager
from repro.wal.records import LogRecord, RecordKind

#: Decision values as they travel over the wire.
DECISION_COMMIT = "commit"
DECISION_ABORT = "abort"


class Coordinator:
    """Owns the decision log and the in-doubt bookkeeping of one cluster."""

    def __init__(
        self,
        name: str = "coord",
        stats: StatsRegistry | None = None,
        group_commit: bool = True,
        group_commit_max_wait_seconds: float = 0.001,
    ) -> None:
        self.name = name
        self.stats = stats or StatsRegistry(enabled=True)
        self.log = LogManager(self.stats)
        self._group_commit = group_commit
        if group_commit:
            self.log.start_group_commit(
                max_wait_seconds=group_commit_max_wait_seconds
            )
        self._mutex = threading.Lock()
        self._seq = itertools.count(1)
        #: gid → participant shard ids, for every durable commit decision.
        self._committed: dict[str, list[int]] = {}
        #: Commit decisions not yet acknowledged by every participant.
        self._outstanding: dict[str, list[int]] = {}
        self._crashed = False

    # -- gid allocation ------------------------------------------------------

    def new_gid(self) -> str:
        with self._mutex:
            return f"{self.name}-{next(self._seq)}"

    # -- decisions -----------------------------------------------------------

    def decide_commit(self, gid: str, shards: list[int]) -> None:
        """Force the commit decision for ``gid`` — THE commit point of a
        global transaction.  Raises (``CommitNotDurableError`` /
        ``LogHaltedError``) if a coordinator crash wins the race, in
        which case no decision exists and presumed abort applies."""
        record = LogRecord(
            kind=RecordKind.COORD_COMMIT,
            txn_id=0,
            payload={"gid": gid, "shards": list(shards)},
            undoable=False,
        )
        lsn = self.log.append(record)
        self.log.force_for_commit(lsn)
        with self._mutex:
            self._committed[gid] = list(shards)
            self._outstanding[gid] = list(shards)
        self.stats.incr("coord.commit_decisions")

    def decide_abort(self, gid: str) -> None:
        """Record the abort decision — advisory only under presumed
        abort (unforced; its loss changes nothing)."""
        try:
            self.log.append(
                LogRecord(
                    kind=RecordKind.COORD_ABORT,
                    txn_id=0,
                    payload={"gid": gid},
                    undoable=False,
                )
            )
        except LogHaltedError:
            pass
        self.stats.incr("coord.abort_decisions")

    def note_ended(self, gid: str) -> None:
        """Every participant applied the commit — write the lazy END so
        recovery stops re-pushing this decision."""
        with self._mutex:
            if self._outstanding.pop(gid, None) is None:
                return
        try:
            self.log.append(
                LogRecord(
                    kind=RecordKind.COORD_END,
                    txn_id=0,
                    payload={"gid": gid},
                    undoable=False,
                )
            )
        except LogHaltedError:
            pass

    def decision_for(self, gid: str) -> str:
        """The durable outcome of ``gid``: ``commit`` iff a COORD_COMMIT
        survived, otherwise abort — **presumed**, which is exactly why
        only commit decisions are forced."""
        with self._mutex:
            return DECISION_COMMIT if gid in self._committed else DECISION_ABORT

    def outstanding_commits(self) -> dict[str, list[int]]:
        with self._mutex:
            return dict(self._outstanding)

    # -- crash / restart -----------------------------------------------------

    def crash(self) -> None:
        """Coordinator process failure: the unforced log tail and every
        in-memory table are lost; decision forces in flight resolve to
        ``CommitNotDurableError`` (their callers treat that as a
        definite abort)."""
        self.log.halt()
        self.log.crash()
        with self._mutex:
            self._committed.clear()
            self._outstanding.clear()
        self._crashed = True
        self.stats.incr("coord.crashes")

    def restart(self) -> int:
        """Rebuild the decision tables from the durable log.  Returns
        the number of outstanding (END-less) commit decisions recovery
        must re-push to their participants."""
        self.log.resume()
        self.log.repair_tail()
        with self._mutex:
            self._committed.clear()
            self._outstanding.clear()
            highest = 0
            for record in self.log.records():
                gid = record.payload.get("gid", "")
                if record.kind is RecordKind.COORD_COMMIT:
                    shards = [int(s) for s in record.payload.get("shards", ())]
                    self._committed[gid] = shards
                    self._outstanding[gid] = shards
                elif record.kind is RecordKind.COORD_END:
                    self._outstanding.pop(gid, None)
                # COORD_ABORT carries no recovery obligation (presumed).
                tail = gid.rsplit("-", 1)[-1]
                if tail.isdigit():
                    highest = max(highest, int(tail))
            # Never reuse a gid that appears in the log.
            self._seq = itertools.count(highest + 1)
            pending = len(self._outstanding)
        self._crashed = False
        self.stats.incr("coord.restarts")
        return pending

    def recover(self, connect_shard: Callable[[int], DatabaseClient]) -> int:
        """Re-push every outstanding commit decision to its participants
        (idempotent shard-side).  Shards that cannot be reached keep the
        decision outstanding for the next attempt.  Returns the number
        of decisions fully resolved."""
        resolved = 0
        for gid, shards in self.outstanding_commits().items():
            all_acked = True
            for shard_id in shards:
                try:
                    client = connect_shard(shard_id)
                    try:
                        client.decide(gid, DECISION_COMMIT)
                    finally:
                        client.close()
                except Exception:  # noqa: BLE001,RPR005 - shard down: retry later
                    all_acked = False
                    self.stats.incr("coord.recover_push_failures")
            if all_acked:
                self.note_ended(gid)
                resolved += 1
        self.stats.incr("coord.recover_decisions_pushed", resolved)
        return resolved

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.log.stop_group_commit()
