"""Wire-protocol front-end for the cluster.

The :class:`ShardRouter` listens like a
:class:`~repro.server.server.DatabaseServer` and speaks the same
length-prefixed JSON protocol, so an **unmodified**
:class:`~repro.server.client.DatabaseClient` talks to the whole
cluster through one address.  Each router session owns a
:class:`~repro.cluster.client.ClusterClient` (one back-end session per
shard) and maps client ops onto it; the client never learns the
sharding exists — except through the two deliberate gaps:

- ``savepoint`` / ``rollback_to_savepoint`` raise ``SessionStateError``
  (a cross-shard savepoint would need per-branch savepoint trees plus a
  partial-rollback protocol; ARIES/IM's nested top actions stay
  shard-local).
- ``prepare`` / ``decide`` / ``cluster_indoubt`` raise too: the router
  *is* the coordinator front-end, clients of the router don't run 2PC
  themselves.

There is no router-level worker pool: each session thread executes its
op inline, and the per-shard servers' own pools bound engine
concurrency — the router adds routing, not admission control.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import TYPE_CHECKING, Callable

from repro.common.errors import (
    ProtocolError,
    ServerShutdownError,
    SessionStateError,
)
from repro.server.client import DatabaseClient
from repro.server.protocol import (
    FrameConn,
    SocketTransport,
    error_response,
    loopback_pair,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.client import ClusterClient
    from repro.cluster.cluster import Cluster

#: Pipelined frames drained per connection read (the router executes
#: inline, so this only bounds buffering, not engine concurrency).
_MAX_BATCH = 64

_UNSUPPORTED = {
    "savepoint": "savepoints are not supported through the cluster router",
    "rollback_to_savepoint": (
        "savepoints are not supported through the cluster router"
    ),
    "prepare": "the router runs two-phase commit itself; prepare is internal",
    "decide": "the router runs two-phase commit itself; decide is internal",
    "cluster_indoubt": "in-doubt inspection is a shard-level op",
}


class RouterSession:
    """One connected client of the router."""

    def __init__(
        self, router: "ShardRouter", conn: FrameConn, session_id: int
    ) -> None:
        self.router = router
        self.conn = conn
        self.session_id = session_id
        self.backend: "ClusterClient" = router.cluster.client()
        self._txn_id: int | None = None
        self._ops: dict[str, Callable[[dict], object]] = {
            "ping": lambda _r: "pong",
            "begin": self._op_begin,
            "commit": self._op_commit,
            "rollback": self._op_rollback,
            "insert": self._op_insert,
            "fetch": self._op_fetch,
            "fetch_prefix": self._op_fetch_prefix,
            "delete": self._op_delete,
            "scan": self._op_scan,
            "create_table": self._op_create_table,
            "create_index": self._op_create_index,
            "stats": self._op_stats,
            "status": self._op_status,
            "close": self._op_close,
        }
        self.closing = False

    # -- connection thread ---------------------------------------------------

    def serve(self) -> None:
        try:
            while not self.closing:
                try:
                    batch = self.conn.read_message_batch(_MAX_BATCH)
                except ProtocolError as exc:
                    try:
                        self.conn.write_message(error_response(exc))
                    except OSError:
                        pass
                    break
                if batch is None:
                    break
                try:
                    self.conn.write_messages(
                        [self.execute(request) for request in batch]
                    )
                except OSError:
                    break
        except OSError:
            pass  # transport torn down under us
        finally:
            self.cleanup()

    def execute(self, request: dict) -> dict:
        op = request.get("op")
        if isinstance(op, str) and op in _UNSUPPORTED:
            response = error_response(SessionStateError(_UNSUPPORTED[op]))
            response["corr_id"] = request.get("corr_id", 0)
            return response
        handler = self._ops.get(op) if isinstance(op, str) else None
        if handler is None:
            response = error_response(ProtocolError(f"unknown op {op!r}"))
            response["corr_id"] = request.get("corr_id", 0)
            return response
        try:
            response = {"ok": True, "result": handler(request)}
        except Exception as exc:  # noqa: BLE001,RPR005 - the wire needs *a* reply
            response = error_response(exc)
            # A failed cluster commit/abort leaves no open transaction.
            if self._txn_id is not None and not self.backend._txn_open:
                self._txn_id = None
                response["txn_aborted"] = True
        response["corr_id"] = request.get("corr_id", 0)
        return response

    def cleanup(self) -> None:
        if self._txn_id is not None:
            self._txn_id = None
            try:
                self.backend.rollback()
            except Exception:  # noqa: BLE001,RPR005 - reply best-effort; client treats drop as in-doubt
                pass
        try:
            self.backend.close()
        except Exception:  # noqa: BLE001,RPR005 - socket already dead; session loop exits
            pass
        self.conn.close()
        self.router.forget_session(self)

    # -- ops -----------------------------------------------------------------

    def _op_begin(self, request: dict) -> int:
        if self._txn_id is not None:
            raise SessionStateError("transaction already open in this session")
        self.backend.begin()
        self._txn_id = next(self.router.txn_ids)
        return self._txn_id

    def _op_commit(self, request: dict) -> int:
        if self._txn_id is None:
            raise SessionStateError("no transaction open in this session")
        txn_id, self._txn_id = self._txn_id, None
        self.backend.commit()
        return txn_id

    def _op_rollback(self, request: dict) -> int:
        if self._txn_id is None:
            raise SessionStateError("no transaction open in this session")
        txn_id, self._txn_id = self._txn_id, None
        self.backend.rollback()
        return txn_id

    def _op_insert(self, request: dict) -> dict:
        return self.backend.insert(request["table"], request["row"])

    def _op_fetch(self, request: dict):
        return self.backend.fetch(
            request["table"],
            request["index"],
            request["key"],
            isolation=request.get("isolation", "rr"),
        )

    def _op_fetch_prefix(self, request: dict):
        return self.backend.fetch_prefix(
            request["table"], request["index"], request["prefix"]
        )

    def _op_delete(self, request: dict) -> dict:
        return self.backend.delete_by_key(
            request["table"], request["index"], request["key"]
        )

    def _op_scan(self, request: dict) -> list[dict]:
        passthrough = {
            key: request[key]
            for key in (
                "low_comparison",
                "high_comparison",
                "isolation",
            )
            if key in request
        }
        return self.backend.scan(
            request["table"],
            request["index"],
            low=request.get("low"),
            high=request.get("high"),
            limit=request.get("limit"),
            **passthrough,
        )

    def _op_create_table(self, request: dict) -> str:
        self.backend.create_table(request["name"])
        return request["name"]

    def _op_create_index(self, request: dict) -> str:
        self.backend.create_index(
            request["table"],
            request["name"],
            column=request["column"],
            unique=bool(request.get("unique", False)),
        )
        return request["name"]

    def _op_stats(self, request: dict) -> dict[str, int]:
        return self.backend.server_stats(request.get("prefix", ""))

    def _op_status(self, request: dict) -> dict:
        return self.backend.server_status()

    def _op_close(self, request: dict) -> str:
        self.closing = True
        return "bye"


class ShardRouter:
    """Serve a :class:`~repro.cluster.cluster.Cluster` through the
    single-node wire protocol."""

    def __init__(self, cluster: "Cluster", host: str = "127.0.0.1", port: int = 0):
        self.cluster = cluster
        self.host = host
        self.port = port
        self.txn_ids = itertools.count(1)
        self._sessions: set[RouterSession] = set()
        self._sessions_lock = threading.Lock()
        self._session_ids = itertools.count(1)
        self._listener: socket.socket | None = None
        self._address: tuple[str, int] | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = False
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self, listen: bool = True) -> "ShardRouter":
        if self._started:
            return self
        self._started = True
        if listen:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(128)
            self._listener = listener
            self._address = listener.getsockname()
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="router-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise ServerShutdownError("router is not listening")
        return self._address

    def connect(
        self, timeout: float | None = 30.0, protocol: str | None = None
    ) -> DatabaseClient:
        host, port = self.address
        return DatabaseClient.connect(host, port, timeout=timeout, protocol=protocol)

    def connect_loopback(self, protocol: str | None = None) -> DatabaseClient:
        if self._stopping or not self._started:
            raise ServerShutdownError("router is not accepting sessions")
        server_end, client_end = loopback_pair()
        self._spawn_session(server_end)
        return DatabaseClient(FrameConn(client_end), protocol=protocol)

    def _spawn_session(self, transport: SocketTransport) -> RouterSession:
        session = RouterSession(
            self, FrameConn(transport), next(self._session_ids)
        )
        with self._sessions_lock:
            self._sessions.add(session)
        thread = threading.Thread(
            target=session.serve,
            name=f"router-session-{session.session_id}",
            daemon=True,
        )
        thread.start()
        return session

    def forget_session(self, session: RouterSession) -> None:
        with self._sessions_lock:
            self._sessions.discard(session)

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed by shutdown
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._spawn_session(SocketTransport(sock))

    def shutdown(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._sessions_lock:
            sessions = list(self._sessions)
        for session in sessions:
            try:
                session.conn.close()
            except Exception:  # noqa: BLE001,RPR005 - best-effort teardown of a dying router
                pass

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
