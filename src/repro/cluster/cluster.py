"""In-process cluster orchestration: N shard servers + a coordinator.

This is the harness-facing assembly used by tests, the torture
harness, and the CI smoke job: each shard is a full
:class:`~repro.db.Database` (own WAL, buffer pool, lock table) behind
its own :class:`~repro.server.server.DatabaseServer`, crashed and
restarted independently.  ``crash_shard``/``crash_coordinator`` model
process failure (volatile tail lost, in-flight commits resolve to
``CommitNotDurableError``); ``resolve_indoubt`` runs the presumed-abort
recovery protocol: the coordinator re-pushes every END-less commit
decision, then every remaining prepared branch without a durable
commit decision is aborted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import DatabaseConfig
from repro.common.errors import ShardUnavailableError
from repro.cluster.client import ClusterClient
from repro.cluster.coordinator import Coordinator
from repro.db import Database
from repro.server.client import DatabaseClient
from repro.server.server import DatabaseServer, ServerConfig


@dataclass
class Shard:
    """One shard: its engine, its server, and its liveness flag."""

    shard_id: int
    db: Database
    server: DatabaseServer
    up: bool = True
    listen: bool = field(default=False, repr=False)

    def connect(self) -> DatabaseClient:
        if not self.up:
            raise ShardUnavailableError(f"shard {self.shard_id} is down")
        if self.listen:
            return self.server.connect()
        return self.server.connect_loopback()


class Cluster:
    """A hash-partitioned cluster of independent shard databases."""

    def __init__(
        self,
        num_shards: int = 3,
        config: DatabaseConfig | None = None,
        server_config: ServerConfig | None = None,
        listen: bool = False,
        key_column: str = "id",
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.key_column = key_column
        self._listen = listen
        self._config = config or DatabaseConfig(
            group_commit=True,
            group_commit_max_wait_seconds=0.001,
            lock_timeout_seconds=1.0,
        )
        self._server_config = server_config or ServerConfig(
            workers=4,
            queue_depth=32,
            request_timeout_seconds=10.0,
            drain_timeout_seconds=10.0,
        )
        self.coordinator = Coordinator()
        self.shards: list[Shard] = []
        for shard_id in range(num_shards):
            db = Database(self._config)
            server = DatabaseServer(db, self._server_config).start(listen=listen)
            self.shards.append(
                Shard(shard_id=shard_id, db=db, server=server, listen=listen)
            )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # -- clients -------------------------------------------------------------

    def client(self) -> ClusterClient:
        """A fresh cluster session (one shard session per shard)."""
        return ClusterClient(
            [shard.connect() for shard in self.shards],
            self.coordinator,
            key_column=self.key_column,
        )

    def client_for_shard(self, shard_id: int) -> DatabaseClient:
        """A fresh direct session against one shard."""
        return self.shards[shard_id].connect()

    def create_table(self, name: str) -> None:
        for shard in self.shards:
            shard.db.create_table(name)

    def create_index(
        self, table: str, name: str, column: str, unique: bool = False
    ) -> None:
        for shard in self.shards:
            shard.db.create_index(table, name, column=column, unique=unique)

    # -- failure injection ---------------------------------------------------

    def crash_shard(self, shard_id: int) -> None:
        """Shard process failure: volatile WAL tail and server gone."""
        shard = self.shards[shard_id]
        shard.db.crash()
        shard.db.log.release_group_commit()
        shard.server.abort()
        shard.up = False

    def restart_shard(self, shard_id: int) -> None:
        """ARIES restart of the shard (prepared branches come back
        in-doubt with their locks), then a fresh server on top."""
        shard = self.shards[shard_id]
        shard.db.restart()
        shard.server = DatabaseServer(shard.db, self._server_config).start(
            listen=shard.listen
        )
        shard.up = True

    def crash_coordinator(self) -> None:
        self.coordinator.crash()

    def restart_coordinator(self) -> int:
        """Recover the coordinator's decision tables from its log.
        Returns the number of outstanding commit decisions."""
        return self.coordinator.restart()

    # -- in-doubt resolution -------------------------------------------------

    def resolve_indoubt(self) -> int:
        """Run the presumed-abort recovery protocol cluster-wide.

        1. The coordinator re-pushes every outstanding (END-less)
           commit decision to its participants.
        2. Each shard's remaining prepared branches are resolved by the
           coordinator's durable decision — commit iff a COORD_COMMIT
           record survived, otherwise abort (presumed).

        Returns the number of branches resolved in step 2."""
        self.coordinator.recover(self.client_for_shard)
        resolved = 0
        for shard in self.shards:
            if not shard.up:
                continue
            client = shard.connect()
            try:
                for entry in client.cluster_indoubt():
                    gid = entry["gid"]
                    client.decide(gid, self.coordinator.decision_for(gid))
                    resolved += 1
            finally:
                client.close()
        return resolved

    def indoubt_gids(self) -> dict[int, list[str]]:
        """Prepared-but-undecided branches per live shard (tests)."""
        out: dict[int, list[str]] = {}
        for shard in self.shards:
            if not shard.up:
                continue
            out[shard.shard_id] = [
                txn.gid for txn in shard.db.indoubt_transactions()
            ]
        return out

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        for shard in self.shards:
            try:
                if shard.up:
                    shard.server.abort()
                shard.db.close()
            except Exception:  # noqa: BLE001,RPR005 - best-effort teardown
                pass
        self.coordinator.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
