"""Baseline locking protocols the paper compares ARIES/IM against.

The protocols themselves live in :mod:`repro.btree.protocol` (they plug
into the same index manager); this package re-exports them and provides
the convenience constructors the experiments use.
"""

from repro.btree.protocol import (
    DataOnlyLocking,
    IndexSpecificLocking,
    KeyValueLocking,
    SystemRStyleLocking,
    make_protocol,
)

#: Protocols compared in E7/E8, in presentation order.
COMPARED_PROTOCOLS = [
    DataOnlyLocking.name,
    IndexSpecificLocking.name,
    KeyValueLocking.name,
    SystemRStyleLocking.name,
]

__all__ = [
    "COMPARED_PROTOCOLS",
    "DataOnlyLocking",
    "IndexSpecificLocking",
    "KeyValueLocking",
    "SystemRStyleLocking",
    "make_protocol",
]
