"""Exception hierarchy for the ARIES/IM reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
Transaction-visible conditions (deadlock, uniqueness violation, simulated
crash) each get a dedicated class because callers dispatch on them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PageNotFoundError(StorageError):
    """A page id does not exist on the simulated disk."""


class PageOverflowError(StorageError):
    """A page cannot hold the requested payload."""


class BufferPoolFullError(StorageError):
    """No frame could be evicted to make room for a page fix."""


class CorruptPageError(StorageError):
    """A page read from disk failed its integrity check (media damage)."""


class IOFaultError(StorageError):
    """Base class for injected (or real) device-level I/O failures."""


class TransientIOError(IOFaultError):
    """An I/O operation failed but is expected to succeed on retry."""


class PermanentIOError(IOFaultError):
    """An I/O operation failed and retrying cannot help.

    Raised directly by a fault injector for hard device errors, and by
    the retry helper when a transient fault persists past the retry
    budget.  The buffer pool escalates it to ``Database.crash()``.
    """


class WALError(ReproError):
    """Base class for log-manager failures."""


class CorruptLogError(WALError):
    """A log record's frame failed its CRC check."""


class TruncatedLogError(CorruptLogError):
    """A log record's frame is cut short (torn log tail)."""


class LSNOutOfRangeError(WALError):
    """A requested LSN is beyond the durable end of the log."""


class LogHaltedError(WALError):
    """The log manager refused an append because the database crashed.

    Between ``Database.crash()`` and ``Database.restart()`` any thread
    still running a transaction against the dead instance must not be
    allowed to write stale records into the post-crash log; the halt
    makes those threads fail fast instead.
    """


class CommitNotDurableError(WALError):
    """A commit parked for a group-commit flush that never happened.

    The crash landed between batch enqueue and the batched force, so
    the commit record was lost with the volatile log tail.  The caller
    was *not* acknowledged: after restart the transaction is rolled
    back (or, in a narrow window, may have made it to disk — the
    classic indeterminate commit every networked database has).
    """


class ReplicationError(ReproError):
    """Base class for log-shipping replication failures."""


class ArchiveGapError(ReplicationError):
    """A WAL archive chunk does not join contiguously onto the archive
    (log space was discarded without passing through the archiver, so
    point-in-time recovery across the gap is impossible)."""


class SyncReplicationTimeoutError(ReplicationError):
    """A commit waited longer than the configured bound for a standby
    to acknowledge durable receipt of its commit record.

    The commit *is* durable on the primary — the transaction is
    committed locally — but the caller was not acknowledged under the
    synchronous-replication contract, so a failover may or may not
    carry it: the classic in-doubt window, surfaced explicitly.
    """


class StandbyError(ReplicationError):
    """A standby operation was illegal in its current state (e.g. a
    write attempted against a read-only hot standby, or promotion of a
    standby that never finished seeding)."""


class LockError(ReproError):
    """Base class for lock-manager failures."""


class DeadlockError(LockError):
    """The deadlock detector chose this transaction as the victim.

    The transaction must be rolled back by the caller.
    """

    def __init__(self, txn_id: int, cycle: tuple[int, ...]) -> None:
        self.txn_id = txn_id
        self.cycle = cycle
        super().__init__(f"transaction {txn_id} deadlocked (cycle: {cycle})")


class LockNotGrantedError(LockError):
    """A conditional lock or latch request could not be granted immediately."""


class LockTimeoutError(LockError):
    """An unconditional lock request waited longer than the configured bound."""


class LatchError(ReproError):
    """Latch protocol violation (double release, wrong owner, ...)."""


class TransactionError(ReproError):
    """Base class for transaction-state violations."""


class TransactionAbortedError(TransactionError):
    """An operation was attempted on an aborted transaction."""


class TransactionNotActiveError(TransactionError):
    """An operation was attempted on a committed/ended transaction."""


class IndexError_(ReproError):
    """Base class for index-manager failures (named to avoid the builtin)."""


class UniqueKeyViolationError(IndexError_):
    """An insert would create a duplicate key value in a unique index."""

    def __init__(self, key_value: bytes) -> None:
        self.key_value = key_value
        super().__init__(f"duplicate key value {key_value!r} in unique index")


class KeyNotFoundError(IndexError_):
    """A delete named a key that is not present in the index."""


class TreeInconsistentError(IndexError_):
    """A traversal hit a structurally inconsistent tree.

    With the paper's safeguards enabled this is unreachable; the ablation
    benchmarks (E6) disable safeguards to show it surfacing.
    """


class RecoveryError(ReproError):
    """Restart or media recovery failed."""


class RecoveryTimeoutError(RecoveryError):
    """An on-demand page recovery did not finish within the per-request
    budget (instant restart: the fix that triggered lazy recovery waited
    ``ondemand_recovery_timeout_seconds`` for another thread recovering
    the same page)."""


class DatabaseClosedError(ReproError):
    """An operation was attempted on a cleanly closed database."""


class ServerError(ReproError):
    """Base class for database-server failures (also the client-side
    stand-in for a server-reported error kind with no local class)."""

    def __init__(self, message: str, kind: str | None = None) -> None:
        self.kind = kind or type(self).__name__
        super().__init__(message)


class ServerOverloadedError(ServerError):
    """Admission control rejected the request: the executor queue was
    full for longer than the admission timeout (backpressure)."""


class RequestTimeoutError(ServerError):
    """A request ran longer than the per-request timeout.  The session
    is closed (its transaction rolled back) because the reply stream is
    no longer in step with the request stream."""


class SessionStateError(ServerError):
    """A request was illegal in the session's current state (e.g. BEGIN
    with a transaction already open)."""


class ProtocolError(ServerError):
    """A malformed frame or message arrived on the wire."""


class ServerShutdownError(ServerError):
    """The server is shutting down and no longer accepts requests."""


class ClusterError(ReproError):
    """Base class for sharding / two-phase-commit failures."""


class TwoPhaseAbortError(ClusterError):
    """A cross-shard transaction was aborted during two-phase commit.

    Raised when a participant voted no (or died) during phase 1, or
    when the coordinator's commit decision could not be made durable.
    Under presumed abort this outcome is *definite*: no participant has
    committed, and any prepared branch resolves to abort at recovery.
    """


class ShardUnavailableError(ClusterError):
    """A shard could not be reached (connection lost or shard down)."""


class SimulatedCrash(ReproError):  # noqa: N818 - reads as an event
    """Raised by an armed failpoint to simulate a system failure.

    Deliberately not a subclass of anything the library's internal retry
    logic would swallow: it propagates to the test harness, which then
    calls ``Database.crash()``.
    """

    def __init__(self, failpoint: str) -> None:
        self.failpoint = failpoint
        super().__init__(f"simulated crash at failpoint {failpoint!r}")
