"""Counter registry and lock-audit trail.

The paper's efficiency measures are *counts*: locks acquired, pages
accessed during redo/undo/normal operation, log passes, synchronous
I/Os (§1).  Every subsystem increments named counters on a shared
:class:`StatsRegistry`; experiments snapshot and diff it.

For Figure 2 (the locking-summary table) counts are not enough — we
need *which* lock, in *which mode*, for *which duration*, on behalf of
*which logical operation*.  The registry therefore also keeps an
optional audit trail of lock and latch acquisitions, tagged with the
operation label installed by the index manager (``"fetch"``,
``"insert"``, ...).
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, slots=True)
class LockAuditEntry:
    """One recorded lock acquisition."""

    txn_id: int
    name: object
    mode: str
    duration: str
    operation: str
    granted_immediately: bool


@dataclass(frozen=True, slots=True)
class LatchAuditEntry:
    """One recorded latch acquisition."""

    owner: int
    name: object
    mode: str
    operation: str


class StatsRegistry:
    """Thread-safe named counters plus optional audit trails.

    Every mutation and every read happens under one internal lock:
    ``incr`` is an atomic read-modify-write, ``snapshot``/``diff``
    observe a consistent point-in-time copy (never a half-applied
    increment), and ``max_gauge`` is an atomic compare-and-raise.  The
    server's executor pool hammers one registry from many threads, so
    these guarantees are load-bearing, not decorative — see
    ``tests/common/test_stats.py::TestConcurrency``.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Counter[str] = Counter()
        self._audit_locks = False
        self._audit_latches = False
        self._lock_audit: list[LockAuditEntry] = []
        self._latch_audit: list[LatchAuditEntry] = []
        self._operation = threading.local()

    # -- counters ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Atomically increment counter ``name`` by ``amount``."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] += amount

    def gauge(self, name: str, value: int) -> None:
        """Set counter ``name`` to an absolute value — progress gauges
        that move in both directions (pages still awaiting recovery)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = value

    def max_gauge(self, name: str, value: int) -> None:
        """Atomically raise counter ``name`` to ``value`` if higher —
        high-water marks (peak queue depth, peak parked committers)."""
        if not self.enabled:
            return
        with self._lock:
            if value > self._counters.get(name, 0):
                self._counters[name] = value

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """Copy of all counters, for later diffing."""
        with self._lock:
            return dict(self._counters)

    def diff(self, before: dict[str, int]) -> dict[str, int]:
        """Counters changed since ``before`` (only nonzero deltas)."""
        now = self.snapshot()
        out: dict[str, int] = {}
        for name, value in now.items():
            delta = value - before.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._lock_audit.clear()
            self._latch_audit.clear()

    # -- operation labels -------------------------------------------------

    def set_operation(self, label: str) -> None:
        """Tag subsequent audit entries from this thread with ``label``."""
        self._operation.label = label

    def clear_operation(self) -> None:
        self._operation.label = ""

    @property
    def operation(self) -> str:
        return getattr(self._operation, "label", "")

    # -- audit trails -----------------------------------------------------

    def enable_lock_audit(self, latches: bool = False) -> None:
        self._audit_locks = True
        self._audit_latches = latches

    def disable_lock_audit(self) -> None:
        self._audit_locks = False
        self._audit_latches = False

    def record_lock(
        self,
        txn_id: int,
        name: object,
        mode: str,
        duration: str,
        granted_immediately: bool,
    ) -> None:
        if not self._audit_locks:
            return
        entry = LockAuditEntry(
            txn_id=txn_id,
            name=name,
            mode=mode,
            duration=duration,
            operation=self.operation,
            granted_immediately=granted_immediately,
        )
        with self._lock:
            self._lock_audit.append(entry)

    def record_latch(self, owner: int, name: object, mode: str) -> None:
        if not self._audit_latches:
            return
        entry = LatchAuditEntry(
            owner=owner, name=name, mode=mode, operation=self.operation
        )
        with self._lock:
            self._latch_audit.append(entry)

    def lock_audit(self) -> list[LockAuditEntry]:
        with self._lock:
            return list(self._lock_audit)

    def latch_audit(self) -> list[LatchAuditEntry]:
        with self._lock:
            return list(self._latch_audit)

    def clear_audit(self) -> None:
        with self._lock:
            self._lock_audit.clear()
            self._latch_audit.clear()

    # -- reporting --------------------------------------------------------

    def iter_sorted(self) -> Iterator[tuple[str, int]]:
        with self._lock:
            items = sorted(self._counters.items())
        yield from items

    def format_table(self, prefix: str = "") -> str:
        """Human-readable counter dump, optionally filtered by prefix."""
        lines = [
            f"{name:<48} {value:>12}"
            for name, value in self.iter_sorted()
            if name.startswith(prefix)
        ]
        return "\n".join(lines)


@dataclass
class OperationProbe:
    """Helper that captures the locks taken by one logical operation.

    Used by the Figure-2 benchmark: wrap each index call in a probe and
    read back the audited entries attributed to it.
    """

    stats: StatsRegistry
    label: str
    entries: list[LockAuditEntry] = field(default_factory=list)
    _start: int = 0

    def __enter__(self) -> "OperationProbe":
        self.stats.enable_lock_audit()
        self._start = len(self.stats.lock_audit())
        self.stats.set_operation(self.label)
        return self

    def __exit__(self, *exc: object) -> None:
        self.stats.clear_operation()
        self.entries = [
            e for e in self.stats.lock_audit()[self._start :] if e.operation == self.label
        ]
