"""Deterministic fault / interleaving injection.

The crash and interleaving scenarios of Figures 1, 3, 9, 10, 11 require
stopping a transaction at an exact point inside an index operation —
"after the leaf-level split is logged but before the propagation to the
parent", say.  Production code sprinkles cheap named hooks
(``failpoints.hit("smo.split.after_leaf")``); tests and benchmarks arm
them with one of three actions:

- **crash** — raise :class:`~repro.common.errors.SimulatedCrash`, which
  the harness converts into ``Database.crash()``;
- **pause** — block the hitting thread on an event until the test
  releases it, which is how cross-thread interleavings are constructed;
- **callback** — run arbitrary test code at the hook.

A hook that is not armed costs one dict lookup.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import SimulatedCrash


@dataclass
class _PausePoint:
    """State for a pause-armed failpoint.

    The crash-on-resume flag is guarded by the point's own mutex and is
    only ever written *before* the release event is set (see
    :meth:`finish`), so a worker waking from :attr:`release` observes a
    settled decision — there is no unsynchronized re-read.
    """

    reached: threading.Event = field(default_factory=threading.Event)
    release: threading.Event = field(default_factory=threading.Event)
    _mutex: threading.Lock = field(default_factory=threading.Lock)
    _crash_after: bool = False

    def finish(self, crash: bool) -> None:
        """Settle the outcome (sticky once crash) and wake the worker."""
        with self._mutex:
            self._crash_after = self._crash_after or crash
        self.release.set()

    def should_crash(self) -> bool:
        with self._mutex:
            return self._crash_after


class FailpointRegistry:
    """Per-database registry of armed failpoints."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._crash_points: dict[str, int] = {}
        self._pause_points: dict[str, _PausePoint] = {}
        self._callbacks: dict[str, Callable[[], None]] = {}
        self._hit_counts: dict[str, int] = {}

    # -- arming -----------------------------------------------------------

    def arm_crash(self, name: str, skip: int = 0) -> None:
        """Arm ``name`` to raise :class:`SimulatedCrash`.

        ``skip`` hits pass through before the crash fires (so a test can
        crash on the third split, for example).
        """
        with self._lock:
            self._crash_points[name] = skip

    def arm_pause(self, name: str) -> _PausePoint:
        """Arm ``name`` to block the hitting thread.

        Returns the pause-point handle; the test calls
        :meth:`wait_until_paused` and later :meth:`release`.
        """
        point = _PausePoint()
        with self._lock:
            self._pause_points[name] = point
        return point

    def arm_callback(self, name: str, fn: Callable[[], None]) -> None:
        with self._lock:
            self._callbacks[name] = fn

    def disarm(self, name: str) -> None:
        with self._lock:
            self._crash_points.pop(name, None)
            point = self._pause_points.pop(name, None)
            self._callbacks.pop(name, None)
        if point is not None:
            point.finish(crash=False)

    def disarm_all(self, crash_paused: bool = False) -> None:
        """Disarm everything.  ``crash_paused`` makes any worker parked
        at a pause point resume with :class:`SimulatedCrash` — the
        behaviour a real system failure would have (used by
        ``Database.crash``).

        The registry is emptied atomically under the lock (so a
        concurrent ``arm_pause`` of the same name installs a *new*
        point rather than racing on the one being released), and each
        captured point's outcome is settled before its worker is woken.
        """
        with self._lock:
            self._crash_points.clear()
            self._callbacks.clear()
            points = list(self._pause_points.values())
            self._pause_points.clear()
        for point in points:
            point.finish(crash=crash_paused)

    # -- pause coordination -------------------------------------------------

    def wait_until_paused(self, name: str, timeout: float = 10.0) -> None:
        """Block the *test* thread until a worker reaches the pause point."""
        with self._lock:
            point = self._pause_points.get(name)
        if point is None:
            raise KeyError(f"failpoint {name!r} is not pause-armed")
        if not point.reached.wait(timeout):
            raise TimeoutError(f"failpoint {name!r} was never reached")

    def release(self, name: str) -> None:
        """Unblock the worker paused at ``name`` (and disarm it)."""
        with self._lock:
            point = self._pause_points.pop(name, None)
        if point is not None:
            point.finish(crash=False)

    # -- the hook ---------------------------------------------------------

    def hit(self, name: str) -> None:
        """Called from production code at a named point."""
        with self._lock:
            self._hit_counts[name] = self._hit_counts.get(name, 0) + 1
            crash_skip = self._crash_points.get(name)
            if crash_skip is not None:
                if crash_skip > 0:
                    self._crash_points[name] = crash_skip - 1
                    crash_skip = None
                else:
                    del self._crash_points[name]
            pause = self._pause_points.get(name)
            callback = self._callbacks.get(name)
        if callback is not None:
            callback()
        if crash_skip is not None:
            raise SimulatedCrash(name)
        if pause is not None:
            pause.reached.set()
            pause.release.wait()
            if pause.should_crash():
                raise SimulatedCrash(name)

    def hits(self, name: str) -> int:
        """How many times ``name`` has been reached (armed or not)."""
        with self._lock:
            return self._hit_counts.get(name, 0)
