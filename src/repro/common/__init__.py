"""Shared infrastructure: errors, config, keys, RIDs, stats, failpoints."""

from repro.common.config import DEFAULT_CONFIG, DatabaseConfig
from repro.common.errors import (
    ConfigError,
    DeadlockError,
    KeyNotFoundError,
    LockNotGrantedError,
    ReproError,
    SimulatedCrash,
    UniqueKeyViolationError,
)
from repro.common.failpoints import FailpointRegistry
from repro.common.keys import UserKey, decode_int_key, decode_str_key, encode_key
from repro.common.rid import NULL_RID, RID, IndexKey
from repro.common.stats import OperationProbe, StatsRegistry

__all__ = [
    "DEFAULT_CONFIG",
    "NULL_RID",
    "RID",
    "ConfigError",
    "DatabaseConfig",
    "DeadlockError",
    "FailpointRegistry",
    "IndexKey",
    "KeyNotFoundError",
    "LockNotGrantedError",
    "OperationProbe",
    "ReproError",
    "SimulatedCrash",
    "StatsRegistry",
    "UniqueKeyViolationError",
    "UserKey",
    "decode_int_key",
    "decode_str_key",
    "encode_key",
]
