"""Order-preserving codecs between user key types and ``bytes``.

The index stores key values as raw ``bytes`` and compares them
lexicographically.  These codecs map common Python types onto byte
strings whose lexicographic order matches the natural order of the
original values, so a single B+-tree implementation serves int, str,
and bytes keys.
"""

from __future__ import annotations

import struct

from repro.common.errors import ConfigError

_INT_STRUCT = struct.Struct(">Q")
_INT_BIAS = 1 << 63
_INT_MIN = -_INT_BIAS
_INT_MAX = _INT_BIAS - 1

UserKey = int | str | bytes


def encode_key(key: UserKey) -> bytes:
    """Encode a user key into order-preserving bytes.

    Integers are biased into unsigned 64-bit space so that negative
    values sort before positive ones.  Strings are UTF-8 encoded (which
    preserves code-point order).  Bytes pass through unchanged.

    Mixing key types within one index is not meaningful and is the
    caller's responsibility to avoid (the encodings of different types
    are not mutually ordered).
    """
    if isinstance(key, bool):  # bool is an int subclass; reject explicitly
        raise ConfigError("bool is not a supported key type")
    if isinstance(key, int):
        if not _INT_MIN <= key <= _INT_MAX:
            raise ConfigError(f"integer key {key} out of 64-bit range")
        return _INT_STRUCT.pack(key + _INT_BIAS)
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, bytes):
        return key
    raise ConfigError(f"unsupported key type {type(key).__name__}")


def decode_int_key(raw: bytes) -> int:
    """Inverse of :func:`encode_key` for integer keys."""
    (biased,) = _INT_STRUCT.unpack(raw)
    return biased - _INT_BIAS


def decode_str_key(raw: bytes) -> str:
    """Inverse of :func:`encode_key` for string keys."""
    return raw.decode("utf-8")


def prefix_upper_bound(prefix: bytes) -> bytes | None:
    """Smallest byte string greater than every string with ``prefix``.

    Increment the last non-0xFF byte and truncate; None when the prefix
    is all 0xFF bytes (no finite upper bound exists — scan to EOF).
    Used by the partial-key (prefix) Fetch of §1.1.
    """
    out = bytearray(prefix)
    while out:
        if out[-1] != 0xFF:
            out[-1] += 1
            return bytes(out)
        out.pop()
    return None
