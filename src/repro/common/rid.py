"""Record identifiers and key types shared by the heap and the index.

A *key* in a leaf page is a (key-value, RID) pair (§1.1).  Key values are
stored as ``bytes`` internally; :mod:`repro.common.keys` provides the
user-facing codecs.  RIDs order lexicographically by (page_id, slot) so
that duplicate key values in a nonunique index sort deterministically.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import total_ordering

_RID_STRUCT = struct.Struct(">IH")


@total_ordering
@dataclass(frozen=True, slots=True)
class RID:
    """Identifier of a record in a data (heap) page."""

    page_id: int
    slot: int

    def __lt__(self, other: "RID") -> bool:
        return (self.page_id, self.slot) < (other.page_id, other.slot)

    def to_bytes(self) -> bytes:
        return _RID_STRUCT.pack(self.page_id, self.slot)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "RID":
        page_id, slot = _RID_STRUCT.unpack(raw)
        return cls(page_id, slot)

    def __repr__(self) -> str:
        return f"RID({self.page_id}:{self.slot})"


NULL_RID = RID(0, 0)
"""Placeholder RID used where a key value alone is being locked (KVL)."""


@total_ordering
@dataclass(frozen=True, slots=True)
class IndexKey:
    """A full index key: (key value, RID of the indexed record).

    In a unique index at most one live key per value exists; in a
    nonunique index duplicates are distinguished (and ordered) by RID.
    """

    value: bytes
    rid: RID

    def __lt__(self, other: "IndexKey") -> bool:
        return (self.value, self.rid) < (other.value, other.rid)

    def encoded_size(self) -> int:
        """Bytes this key occupies in a serialized leaf page."""
        return 12 + len(self.value)

    def __repr__(self) -> str:
        return f"IndexKey({self.value!r}, {self.rid!r})"
