"""Configuration for a :class:`repro.db.Database` instance.

All tunables live in one frozen dataclass so experiments can state their
parameters declaratively and so ablation benchmarks can flip a single
switch (``enable_sm_bit``, ``enable_delete_bit``, ``tree_latch_mode``)
to demonstrate why each ARIES/IM mechanism exists.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

from repro.common.errors import ConfigError

LockGranularity = Literal["record", "page"]
IndexLockingProtocol = Literal["data_only", "index_specific"]
TreeLatchMode = Literal["latch", "lock"]


@dataclass(frozen=True)
class DatabaseConfig:
    """Tunables for one database instance.

    Parameters mirror the design choices called out in the paper:

    - ``index_locking``: ``"data_only"`` is ARIES/IM's headline protocol
      (the key lock *is* the record lock); ``"index_specific"`` is the
      variant mentioned in §2.1 that explicitly locks keys in the index
      for slightly more concurrency at extra locking cost.
    - ``lock_granularity``: the granularity associated with the table
      (§2.1: "at the locking granularity (page, record, ...) associated
      with the table/file").
    - ``tree_latch_mode``: ``"latch"`` serializes SMOs with an X tree
      latch (§2.1); ``"lock"`` implements the §5 extension where SMOs
      take the tree lock in IX and upgrade to X only for nonleaf SMOs.
    - ``enable_sm_bit`` / ``enable_delete_bit`` /
      ``enable_boundary_delete_posc``: recovery safeguards from §3;
      disabled only by ablation experiments.
    """

    page_size: int = 4096
    buffer_pool_pages: int = 256
    lock_granularity: LockGranularity = "record"
    index_locking: IndexLockingProtocol = "data_only"
    tree_latch_mode: TreeLatchMode = "latch"
    enable_sm_bit: bool = True
    enable_delete_bit: bool = True
    enable_boundary_delete_posc: bool = True
    reset_sm_bits_after_smo: bool = True
    lock_timeout_seconds: float = 10.0
    latch_timeout_seconds: float = 10.0
    deadlock_detection: bool = True
    checkpoint_interval_records: int = 0
    """Write a fuzzy checkpoint every N log records (0 disables)."""

    group_commit: bool = False
    """Coalesce concurrent commit forces into batched synchronous log
    flushes (one flusher thread; committers park on a condition
    variable).  Off by default: single-threaded experiments want the
    paper's one-force-per-commit accounting."""
    group_commit_max_batch: int = 64
    """Flush as soon as this many commits are parked."""
    group_commit_max_wait_seconds: float = 0.002
    """Flush no later than this after the first commit of a batch parks
    (bounds added commit latency)."""
    log_flush_latency_seconds: float = 0.0
    """Simulated device latency charged per synchronous log flush
    (0 disables).  The in-memory log makes flushes free, which hides
    the cost group commit exists to amortize; benchmarks set this to a
    realistic fsync latency so one-force-per-commit pays per commit
    while a coalesced flush pays once per batch."""

    mvcc_enabled: bool = True
    """Maintain version stamps and serve lock-free snapshot reads
    (:mod:`repro.mvcc`).  Off, ``begin_snapshot`` raises and the
    write path skips the (cheap) dead-key bookkeeping — the ablation
    baseline for the E19 writer-overhead comparison."""

    mvcc_gc_interval_seconds: float = 0.0
    """Run a version-GC pass (:func:`repro.mvcc.gc.run_mvcc_gc`) every
    this many seconds on a background thread (0 disables — GC stays
    caller-driven).  The pacer skips passes while the database is
    crashed or closing; it exists so concurrent harnesses exercise GC's
    latch ordering under load, not as a tuned production daemon."""

    ondemand_recovery_timeout_seconds: float = 30.0
    """Instant restart: how long a page fix waits for another thread's
    in-flight on-demand recovery of the same page before giving up with
    :class:`~repro.common.errors.RecoveryTimeoutError`."""

    io_retry_limit: int = 4
    """Attempts the buffer pool makes per disk I/O before a transient
    fault is promoted to a permanent one (and escalated to a crash)."""
    io_retry_backoff_seconds: float = 0.0
    """Base of the exponential backoff between I/O retries (0 = no sleep)."""

    stats_enabled: bool = True
    debug_latch_checks: bool = True
    """Assert the paper's invariant that no more than two index-page
    latches are held simultaneously by one transaction."""

    def __post_init__(self) -> None:
        if self.page_size < 512:
            raise ConfigError(f"page_size {self.page_size} is too small (< 512)")
        if self.buffer_pool_pages < 4:
            raise ConfigError("buffer_pool_pages must be at least 4")
        if self.lock_timeout_seconds <= 0 or self.latch_timeout_seconds <= 0:
            raise ConfigError("timeouts must be positive")
        if self.checkpoint_interval_records < 0:
            raise ConfigError("checkpoint_interval_records must be >= 0")
        if self.io_retry_limit < 1:
            raise ConfigError("io_retry_limit must be at least 1")
        if self.ondemand_recovery_timeout_seconds <= 0:
            raise ConfigError("ondemand_recovery_timeout_seconds must be positive")
        if self.group_commit_max_batch < 1:
            raise ConfigError("group_commit_max_batch must be at least 1")
        if self.group_commit_max_wait_seconds < 0:
            raise ConfigError("group_commit_max_wait_seconds must be >= 0")
        if self.log_flush_latency_seconds < 0:
            raise ConfigError("log_flush_latency_seconds must be >= 0")
        if self.io_retry_backoff_seconds < 0:
            raise ConfigError("io_retry_backoff_seconds must be >= 0")
        if self.mvcc_gc_interval_seconds < 0:
            raise ConfigError("mvcc_gc_interval_seconds must be >= 0")

    def with_overrides(self, **kwargs: object) -> "DatabaseConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


DEFAULT_CONFIG = DatabaseConfig()
