"""The B+-tree object: metadata, traversal (Figure 4), shared helpers.

One :class:`BTree` instance exists per index.  The action routines
(fetch, insert, delete — Figures 5–7) and the structure modification
operations (Figure 8) live in sibling modules and operate on a tree
through the helpers here.

Latch protocol implemented by :meth:`traverse` (§2.1 / Figure 4):

- latch coupling on the way down (parent latch held while the child
  latch is requested);
- leaf latched X for insert/delete, S for fetch;
- at most two page latches held at any moment;
- the tree latch is *not* acquired during traversals, except instantly
  (in S mode) to wait out an unfinished SMO when a nonleaf page is
  ambiguous — nonempty-child test fails or the input key exceeds the
  page's highest key while its SM_Bit is '1'.

Where the paper "unwinds recursion as far as necessary based on noted
page LSNs", this implementation restarts from the root: same
correctness, a few more page visits, honestly counted in
``btree.traversal_restarts``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import (
    IndexError_,
    LatchError,
    LockError,
    LockNotGrantedError,
    TreeInconsistentError,
)
from repro.common.keys import UserKey, encode_key
from repro.common.rid import RID, IndexKey
from repro.btree.node import IndexPage
from repro.locks.modes import LockDuration, LockMode, tree_lock_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.btree.protocol import LockingProtocol
    from repro.db import Database
    from repro.txn.transaction import Transaction

#: Sentinel RIDs used to turn a bare value into a full-key search bound.
MIN_RID = RID(0, 0)
MAX_RID = RID(0xFFFFFFFF, 0xFFFF)


@dataclass
class Descent:
    """Result of a traversal: the leaf (fixed and latched) plus its
    parent (fixed and latched, or None when the root is the leaf)."""

    leaf: IndexPage
    parent: IndexPage | None

    def unlatch_parent(self, tree: "BTree") -> None:
        if self.parent is not None:
            tree.unlatch_unfix(self.parent)
            self.parent = None

    def release_all(self, tree: "BTree") -> None:
        self.unlatch_parent(tree)
        if self.leaf is not None:
            tree.unlatch_unfix(self.leaf)
            self.leaf = None  # type: ignore[assignment]


class BTree:
    """One B+-tree index."""

    def __init__(
        self,
        ctx: "Database",
        index_id: int,
        name: str,
        table_id: int,
        column: str,
        root_page_id: int,
        unique: bool,
        protocol: "LockingProtocol",
    ) -> None:
        self.ctx = ctx
        self.index_id = index_id
        self.name = name
        self.table_id = table_id
        self.column = column
        self.root_page_id = root_page_id
        self.unique = unique
        self.protocol = protocol

    # -- small helpers -----------------------------------------------------------

    def make_key(self, value: UserKey, rid: RID) -> IndexKey:
        return IndexKey(encode_key(value), rid)

    def fix_page(self, page_id: int) -> IndexPage:
        page = self.ctx.buffer.fix(page_id)  # noqa: RPR001 - ownership transfer: caller unfixes
        if not isinstance(page, IndexPage):
            self.ctx.buffer.unfix(page_id)
            raise IndexError_(f"page {page_id} is not an index page")
        return page

    def latch(self, page: IndexPage, mode: str, conditional: bool = False) -> None:
        self.ctx.latches.latch_page(page.page_id, mode, conditional=conditional)  # noqa: RPR001 - ownership transfer: caller unlatches

    def unlatch(self, page: IndexPage) -> None:
        self.ctx.latches.unlatch_page(page.page_id)

    def unlatch_unfix(self, page: IndexPage) -> None:
        self.ctx.latches.unlatch_page(page.page_id)
        self.ctx.buffer.unfix(page.page_id)

    def fix_and_latch(self, page_id: int, mode: str) -> IndexPage:
        page = self.fix_page(page_id)
        try:
            self.latch(page, mode)
        except BaseException:
            self.ctx.buffer.unfix(page_id)
            raise
        return page

    # -- tree latch --------------------------------------------------------------
    #
    # §2.1 serializes SMOs with an X tree latch.  §5's extension turns
    # it into a *lock* so leaf-level SMOs can run concurrently (IX) and
    # only nonleaf propagation is exclusive (upgrade to X).  Rolling
    # back transactions always take X so they can never deadlock on the
    # upgrade (§5).  ``tree_latch_mode`` selects the variant.

    @property
    def tree_latch(self):
        return self.ctx.latches.tree_latch(self.index_id)

    @property
    def _lock_mode_smo(self) -> bool:
        return self.ctx.config.tree_latch_mode == "lock"

    def smo_barrier_wait(self, txn: "Transaction | None") -> None:
        """Instant S on the SMO barrier: returns once no SMO is active.

        §2.1's serialized variant uses the X tree latch; §5's variant
        uses a tree *lock* (IX for leaf SMOs, X for nonleaf), so the
        wait becomes an instant S tree-lock request.
        """
        if self._lock_mode_smo and txn is not None:
            self.ctx.locks.request(
                txn.txn_id,
                tree_lock_name(self.index_id),
                LockMode.S,
                LockDuration.INSTANT,
            )
        else:
            self.tree_latch.instant("S")

    def smo_barrier_try(self, txn: "Transaction | None") -> bool:
        """Conditional instant S on the SMO barrier (while latches are
        held).  Returns True on success; otherwise the caller must
        release its latches and call :meth:`smo_barrier_wait`."""
        try:
            if self._lock_mode_smo and txn is not None:
                self.ctx.locks.request(
                    txn.txn_id,
                    tree_lock_name(self.index_id),
                    LockMode.S,
                    LockDuration.INSTANT,
                    conditional=True,
                )
            else:
                self.tree_latch.instant("S", conditional=True)
            return True
        except LockNotGrantedError:
            return False

    # -- SMO entry/exit -----------------------------------------------------------

    def smo_begin(self, txn: "Transaction") -> None:
        """Enter an SMO.

        Latch variant: X tree latch (all SMOs serialized).  Lock
        variant (§5): IX tree lock for a leaf-level SMO — X when the
        transaction is rolling back, so rollbacks can never hit the
        deadlock-prone IX→X upgrade.
        """
        if self._lock_mode_smo:
            mode = LockMode.X if txn.in_rollback else LockMode.IX
            self.ctx.locks.request(
                txn.txn_id, tree_lock_name(self.index_id), mode, LockDuration.MANUAL
            )
        else:
            self.tree_latch.acquire("X")  # noqa: RPR001 - held across the SMO; smo_end releases
        self.ctx.stats.incr("btree.smo_begun")

    def smo_upgrade_for_nonleaf(self, txn: "Transaction") -> None:
        """Lock variant: upgrade IX→X before a nonleaf-level SMO.  May
        raise DeadlockError (two concurrent upgraders) — the documented
        §5 hazard; the caller's transaction must then roll back, which
        undoes the partial SMO page-oriented."""
        if self._lock_mode_smo:
            self.ctx.locks.request(
                txn.txn_id,
                tree_lock_name(self.index_id),
                LockMode.X,
                LockDuration.MANUAL,
            )
            self.ctx.stats.incr("btree.smo_upgrades")

    def smo_end(self, txn: "Transaction") -> None:
        try:
            if self._lock_mode_smo:
                self.ctx.locks.release(txn.txn_id, tree_lock_name(self.index_id))
            else:
                self.tree_latch.release()
        except (LatchError, LockError):
            # A simulated crash replaced the latch/lock managers under
            # this thread mid-SMO; there is nothing left to release.
            if not self.ctx._crashed:
                raise
        self.ctx.stats.incr("btree.smo_ended")

    # -- POSC for boundary deletes (§3 / Figure 7) ------------------------------------

    def posc_try(self, txn: "Transaction") -> bool:
        """Conditionally establish a point of structural consistency
        (S on the barrier, *held* until released)."""
        try:
            if self._lock_mode_smo:
                self.ctx.locks.request(
                    txn.txn_id,
                    tree_lock_name(self.index_id),
                    LockMode.S,
                    LockDuration.MANUAL,
                    conditional=True,
                )
            else:
                self.tree_latch.acquire("S", conditional=True)  # noqa: RPR001 - POSC barrier held until posc_release
            return True
        except LockNotGrantedError:
            return False

    def posc_acquire(self, txn: "Transaction") -> None:
        if self._lock_mode_smo:
            self.ctx.locks.request(
                txn.txn_id,
                tree_lock_name(self.index_id),
                LockMode.S,
                LockDuration.MANUAL,
            )
        else:
            self.tree_latch.acquire("S")  # noqa: RPR001 - POSC barrier held until posc_release

    def posc_release(self, txn: "Transaction") -> None:
        if self._lock_mode_smo:
            self.ctx.locks.release(txn.txn_id, tree_lock_name(self.index_id))
        else:
            self.tree_latch.release()

    # -- traversal (Figure 4) ---------------------------------------------------------

    def traverse(
        self, key: IndexKey, for_update: bool, txn: "Transaction | None" = None
    ) -> Descent:
        """Descend to the leaf that should hold ``key``.

        Returns with the leaf latched (X for updates, S otherwise) and
        its parent latched; both fixed.  Restarts from the root after
        waiting out an ambiguous unfinished SMO.
        """
        ctx = self.ctx
        stats = ctx.stats
        stats.incr("btree.traversals")
        ambiguity_waits = 0
        while True:
            node = self.fix_page(self.root_page_id)
            self.latch(node, "S")
            if node.is_leaf and for_update:
                # The root is (currently) the leaf; re-latch X and make
                # sure nothing changed in the gap.
                noted_lsn = node.page_lsn
                self.unlatch(node)
                self.latch(node, "X")
                if node.page_lsn != noted_lsn or not node.is_leaf:
                    self.unlatch_unfix(node)
                    stats.incr("btree.traversal_restarts")
                    continue
            parent: IndexPage | None = None
            restart = False
            while not node.is_leaf:
                if not self._trusted(node, key):
                    # Unfinished SMO causes ambiguity.  Try an instant S
                    # on the barrier while still latched: if there is no
                    # SMO in progress the bit is stale (e.g. redo
                    # repeated history and re-set it) and can be reset
                    # lazily, which the paper explicitly allows.
                    if node.sm_bit and self.smo_barrier_try(txn):
                        node.sm_bit = False
                        if self._trusted(node, key):
                            pass  # fall through and descend
                        else:
                            restart = True  # empty page: structural issue
                    else:
                        restart = True
                    if restart:
                        # Let go of everything, wait out the SMO, start
                        # over from the root.
                        if parent is not None:
                            self.unlatch_unfix(parent)
                        self.unlatch_unfix(node)
                        self.smo_barrier_wait(txn)
                        stats.incr("btree.traversal_restarts")
                        ambiguity_waits += 1
                        if ambiguity_waits > 50:
                            raise TreeInconsistentError(
                                f"traversal of index {self.name!r} cannot make "
                                f"progress at page {node.page_id} — the tree is "
                                "structurally inconsistent (expected only in "
                                "ablation runs with safeguards disabled)"
                            )
                        break
                child_id = node.child_for(key)
                # Figure 4's order: unlatch the old parent *before*
                # latching the child, so never more than two page
                # latches are held (the current node stays latched —
                # that is the latch coupling).
                if parent is not None:
                    self.unlatch_unfix(parent)
                parent = node
                child = self.fix_page(child_id)
                mode = "X" if (node.level == 1 and for_update) else "S"
                self.latch(child, mode)
                node = child
                stats.incr("btree.pages_visited")
            if restart:
                continue
            return Descent(leaf=node, parent=parent)

    def _trusted(self, node: IndexPage, key: IndexKey) -> bool:
        """Figure 4's nonleaf trust test: nonempty and either the key is
        within the page's highest stored high key or SM_Bit is '0'."""
        if node.is_empty():
            return False
        if not self.ctx.config.enable_sm_bit:
            return True  # ablation: traverse blindly (E3 shows why not)
        max_high = node.max_high_key()
        within = max_high is not None and key <= max_high
        return within or not node.sm_bit

    # -- next-key location ---------------------------------------------------------
    #
    # Shared by fetch/insert/delete: find the key immediately following
    # ``after`` starting at position ``pos`` of ``leaf``.  May walk
    # right along the leaf chain, latching the next page while holding
    # the current one (Figures 5 and 6).  Returns the next key and the
    # (fixed, latched) page holding it — or (None, None) for EOF.  The
    # caller must unlatch/unfix the returned page if it is not ``leaf``.

    def find_next_key(
        self, leaf: IndexPage, pos: int
    ) -> tuple[IndexKey | None, IndexPage | None]:
        if pos < len(leaf.keys):
            return leaf.keys[pos], leaf
        current = leaf
        while True:
            next_id = current.next_leaf
            if current is not leaf:
                # Release the intermediate hop before latching onward so
                # at most two page latches (the caller's leaf + one) are
                # ever held.  The page reached may have been freed in
                # the gap; the guard below restarts the operation then.
                self.unlatch_unfix(current)
            if next_id == 0:
                return None, None
            nxt = self.fix_and_latch(next_id, "S")
            if nxt.index_id != self.index_id or not nxt.is_leaf:
                # Freed (or repurposed) under us mid-SMO: give the
                # caller's whole operation a fresh start.
                from repro.btree.ops_common import RestartOperation

                self.unlatch_unfix(nxt)
                self.unlatch_unfix(leaf)
                self.ctx.stats.incr("btree.next_key_walk_restarts")
                raise RestartOperation()
            self.ctx.stats.incr("btree.next_leaf_hops")
            if nxt.keys:
                return nxt.keys[0], nxt
            current = nxt  # empty page mid-SMO: keep walking

    # -- integrity checking (test support) ----------------------------------------------

    def check_structure(self) -> list[str]:
        """Verify tree invariants; returns a list of violations (empty
        when consistent).  Test/diagnostic helper — takes no latches, so
        only call it quiesced."""
        problems: list[str] = []
        leaves: list[int] = []

        def walk(page_id: int, low: IndexKey | None, high: IndexKey | None) -> None:
            page = self.fix_page(page_id)
            try:
                if page.is_leaf:
                    leaves.append(page_id)
                    for key in page.keys:
                        if low is not None and key < low:
                            problems.append(f"leaf {page_id}: key {key} below bound")
                        if high is not None and not (key < high):
                            problems.append(f"leaf {page_id}: key {key} above bound")
                    if page.keys != sorted(page.keys):
                        problems.append(f"leaf {page_id}: keys out of order")
                    if (
                        not page.keys
                        and page_id != self.root_page_id
                        and not page.sm_bit
                    ):
                        problems.append(
                            f"leaf {page_id}: empty, reachable, SM_Bit=0 "
                            "(violates the no-empty-page invariant)"
                        )
                else:
                    if not page.child_ids:
                        problems.append(f"nonleaf {page_id}: no children")
                    if page.high_keys and page.high_keys[-1] is not None:
                        problems.append(
                            f"nonleaf {page_id}: rightmost child has a high key"
                        )
                    child_low = low
                    for child_id, child_high in zip(page.child_ids, page.high_keys):
                        bound = child_high if child_high is not None else high
                        walk(child_id, child_low, bound)
                        child_low = child_high
            finally:
                self.ctx.buffer.unfix(page_id)

        walk(self.root_page_id, None, None)

        # Leaf chain must visit the same leaves in the same order.
        chained: list[int] = []
        page = self.fix_page(self.root_page_id)
        while not page.is_leaf:
            child_id = page.child_ids[0]
            self.ctx.buffer.unfix(page.page_id)
            page = self.fix_page(child_id)
        while True:
            chained.append(page.page_id)
            next_id = page.next_leaf
            self.ctx.buffer.unfix(page.page_id)
            if next_id == 0:
                break
            page = self.fix_page(next_id)
        if chained != leaves:
            problems.append(f"leaf chain {chained} != tree order {leaves}")
        return problems

    def all_keys(self) -> list[IndexKey]:
        """Every key in leaf-chain order (test/diagnostic helper)."""
        out: list[IndexKey] = []
        page = self.fix_page(self.root_page_id)
        while not page.is_leaf:
            child_id = page.child_ids[0]
            self.ctx.buffer.unfix(page.page_id)
            page = self.fix_page(child_id)
        while True:
            out.extend(page.keys)
            next_id = page.next_leaf
            self.ctx.buffer.unfix(page.page_id)
            if next_id == 0:
                break
            page = self.fix_page(next_id)
        return out
