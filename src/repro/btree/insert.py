"""Key insert (Figure 6 / §2.4).

Flow per attempt:

1. Traverse to the leaf (X latch) with latch coupling.
2. If SM_Bit or Delete_Bit is '1', ensure no SMO is in progress
   (instant S on the SMO barrier — conditionally while latched, else
   release everything and wait), then reset the bits.  The Delete_Bit
   check is the Figure 11 safeguard: consuming space freed by an
   uncommitted delete only after a point of structural consistency.
3. Unlatch the parent.
4. Unique index: if a key with the same value exists, S-lock it for
   commit duration; if it is still there afterwards, report the
   (repeatable) unique-violation (§2.4).
5. Find the next key (maybe on the next leaf, latched while holding the
   current leaf) and request the protocol's insert locks — for
   ARIES/IM an instant-duration X on the next key.
6. If the key fits: log, apply, done.  Otherwise enter the page-split
   path (Figure 8) in :mod:`repro.btree.smo`.

During rollback (``clr_for`` set) this same routine performs the
*logical undo* of a key delete: no locks, no unique check, and the key
insert is logged as a CLR pointing at the undone record's predecessor.
Any page split it triggers is logged with regular records (§3's
documented exception).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import IndexError_, UniqueKeyViolationError
from repro.common.rid import IndexKey
from repro.btree.node import IndexPage
from repro.btree.ops_common import (
    Outcome,
    RestartOperation,
    release_pages,
    request_locks,
    same_value_nearby,
)
from repro.storage.page import PAGE_OVERHEAD
from repro.wal.records import RM_BTREE, LogRecord, clr_record, update_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.btree.tree import BTree
    from repro.txn.transaction import Transaction


class UniqueProbeNeeded(Exception):
    """Internal: the duplicate check cannot be decided from the current
    leaf (insert position 0 of a non-leftmost leaf — an equal-value key
    with a smaller RID could sit at the end of the previous leaf, which
    must not be latched right-to-left).  The caller resolves it with a
    locked Fetch probe."""


def index_insert(
    tree: "BTree",
    txn: "Transaction",
    key: IndexKey,
    clr_for: LogRecord | None = None,
) -> None:
    """Insert ``key``; raises UniqueKeyViolationError on a duplicate
    value in a unique index."""
    ctx = tree.ctx
    ctx.stats.incr("btree.op.insert")
    _check_key_size(tree, key)
    probed = False
    while True:
        descent = tree.traverse(key, for_update=True, txn=txn)
        leaf = descent.leaf
        # Step 2: Figure 6's bit check.
        config = ctx.config
        blocked = (leaf.sm_bit and config.enable_sm_bit) or (
            leaf.delete_bit and config.enable_delete_bit
        )
        if blocked:
            if tree.smo_barrier_try(txn):
                leaf.sm_bit = False
                leaf.delete_bit = False
                ctx.stats.incr("btree.insert_bit_resets")
            else:
                descent.release_all(tree)
                tree.smo_barrier_wait(txn)
                ctx.stats.incr("btree.insert_bit_waits")
                continue
        descent.unlatch_parent(tree)
        try:
            outcome = try_insert_on_leaf(
                tree, txn, leaf, key, clr_for, probed=probed
            )
        except RestartOperation:
            continue
        except UniqueProbeNeeded:
            _unique_probe(tree, txn, key)
            probed = True
            continue
        if outcome is Outcome.DONE:
            return
        # Outcome.NEEDS_SPLIT: all latches have been released.
        from repro.btree.smo import split_and_insert

        split_and_insert(tree, txn, key, clr_for, probed=probed)
        return


def _unique_probe(tree: "BTree", txn: "Transaction", key: IndexKey) -> None:
    """Resolve an undecidable duplicate check with a Fetch-style probe:
    S-lock (commit duration) the key at or after ``key.value``.  If the
    value exists, that is a repeatable unique violation (§2.4); if not,
    the acquired next-key lock blocks any other transaction from
    inserting the value for the rest of this transaction, making the
    not-found verdict durable."""
    from repro.btree.fetch import index_fetch

    tree.ctx.stats.incr("btree.unique_probes")
    result = index_fetch(tree, txn, key.value, comparison="=")
    if result.found:
        raise UniqueKeyViolationError(key.value)


def try_insert_on_leaf(
    tree: "BTree",
    txn: "Transaction",
    leaf: IndexPage,
    key: IndexKey,
    clr_for: LogRecord | None,
    smo_barrier_held: bool = False,
    probed: bool = False,
) -> Outcome:
    """One attempt to insert on an X-latched leaf (steps 4–6).

    Consumes the leaf latch in every outcome.  Raises
    :class:`RestartOperation` if latches had to be released to wait for
    a lock, and :class:`UniqueProbeNeeded` if the duplicate check needs
    the probe path.
    """
    ctx = tree.ctx
    pos, exact = leaf.find_key(key)
    if exact:
        tree.unlatch_unfix(leaf)
        raise IndexError_(f"key {key!r} already present in index {tree.name!r}")
    next_key, next_page = tree.find_next_key(leaf, pos)
    held: list[IndexPage | None] = [leaf, next_page]
    wants_locks = clr_for is None and not txn.in_rollback

    # Staleness guard: if the "next" key is not actually greater than
    # the insert key, this leaf no longer covers the key — it was split
    # between our route decision at the parent and our latch grant (the
    # Figure 3 family of races).  The invariant "first key of the next
    # leaf > every key belonging to this leaf" makes this check exact.
    if next_key is not None and next_key <= key:
        release_pages(tree, held)
        ctx.stats.incr("btree.stale_leaf_restarts")
        raise RestartOperation(smo_barrier_lost=False)

    if tree.unique and wants_locks:
        # Duplicate-value detection (§2.4).  Candidates: the key before
        # the insert position (same page) and the next key (maybe on
        # the next page).  If the insert position is the very start of
        # a non-leftmost leaf, an equal-value key could end the
        # *previous* leaf, which must not be latched right-to-left —
        # resolve with the probe path instead.
        duplicate = None
        if pos > 0 and leaf.keys[pos - 1].value == key.value:
            duplicate = leaf.keys[pos - 1]
        elif next_key is not None and next_key.value == key.value:
            duplicate = next_key
        elif pos == 0 and leaf.prev_leaf != 0 and not probed:
            release_pages(tree, held)
            raise UniqueProbeNeeded()
        if duplicate is not None:
            # S commit lock on the equal key; if it is still there once
            # granted, the violation is repeatable.
            spec = tree.protocol.unique_check_lock(tree, duplicate)
            request_locks(tree, txn, [spec], held, smo_barrier_held)
            release_pages(tree, held)
            raise UniqueKeyViolationError(key.value)

    if wants_locks:
        value_exists = same_value_nearby(leaf, pos, key.value, next_key)
        specs = tree.protocol.insert_locks(tree, key, next_key, value_exists)
        request_locks(tree, txn, specs, held, smo_barrier_held)
    # Figure 6: unlatch the next page after acquiring the next-key lock.
    if next_page is not None and next_page is not leaf:
        tree.unlatch_unfix(next_page)

    if not leaf.has_room_for_key(key, ctx.config.page_size):
        tree.unlatch_unfix(leaf)
        return Outcome.NEEDS_SPLIT

    _log_and_apply_insert(tree, txn, leaf, key, clr_for)
    tree.unlatch_unfix(leaf)
    return Outcome.DONE


def _log_and_apply_insert(
    tree: "BTree",
    txn: "Transaction",
    leaf: IndexPage,
    key: IndexKey,
    clr_for: LogRecord | None,
) -> None:
    ctx = tree.ctx
    payload = {"index_id": tree.index_id, "key": key}
    if clr_for is None:
        record = update_record(txn.txn_id, RM_BTREE, "insert_key", leaf.page_id, payload)
    else:
        record = clr_record(
            txn.txn_id,
            RM_BTREE,
            "insert_key_c",
            leaf.page_id,
            payload,
            undo_next_lsn=clr_for.prev_lsn,
        )
    lsn = ctx.txns.log_for(txn, record)
    leaf.insert_key(key)
    leaf.page_lsn = lsn
    ctx.buffer.mark_dirty(leaf.page_id, lsn)
    ctx.stats.incr("btree.keys_inserted")
    ctx.failpoints.hit("btree.insert.after_log")


def _check_key_size(tree: "BTree", key: IndexKey) -> None:
    """A key must fit on a freshly split page with at least one sibling
    key, or splitting could never make room."""
    limit = (tree.ctx.config.page_size - PAGE_OVERHEAD) // 4
    if key.encoded_size() > limit:
        raise IndexError_(
            f"key of {key.encoded_size()} bytes exceeds the per-key limit "
            f"of {limit} bytes for {tree.ctx.config.page_size}-byte pages"
        )
