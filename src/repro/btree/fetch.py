"""Fetch and Fetch Next (Figures 5 and §2.3).

Fetch locates the requested key or the next higher one (possibly on the
next leaf, latched while the first leaf's latch is held), locks it —
or the index's EOF lock name when the scan runs off the right edge —
for commit duration in S mode, and returns.  Locking the *next* key on
a miss is what makes "not found" repeatable (the phantom problem, §2.2)
and what trips over an uncommitted delete's commit-duration X lock.

Fetch Next (§2.3) keeps a cursor: the leaf page, position, and page LSN
noted at the previous call.  If the page LSN is unchanged the next key
is simply the next slot; otherwise the cursor repositions with a fresh
traversal, exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import PageNotFoundError
from repro.common.rid import IndexKey
from repro.btree.node import IndexPage
from repro.btree.ops_common import RestartOperation, release_pages, request_locks
from repro.btree.tree import MAX_RID, MIN_RID

if TYPE_CHECKING:  # pragma: no cover
    from repro.btree.tree import BTree
    from repro.txn.transaction import Transaction


@dataclass
class FetchResult:
    """Outcome of a Fetch / Fetch Next call."""

    found: bool
    key: IndexKey | None
    eof: bool
    #: Name of the lock taken on the current key (or the EOF name); a
    #: cursor-stability caller releases it when the cursor moves on.
    lock_name: tuple | None = None

    @property
    def rid(self):
        return self.key.rid if self.key is not None else None


@dataclass
class Cursor:
    """Range-scan position (§2.3)."""

    tree: "BTree"
    current_key: IndexKey | None = None
    leaf_id: int = 0
    page_lsn: int = 0
    pos: int = -1
    at_eof: bool = False

    def note_position(self, page: IndexPage, pos: int, key: IndexKey) -> None:
        """Record where a key was returned from, while its page latch is
        still held (the LSN must be noted under the latch)."""
        self.leaf_id = page.page_id
        self.page_lsn = page.page_lsn
        self.pos = pos
        self.current_key = key
        self.at_eof = False


def _search_bound(value: bytes, comparison: str) -> IndexKey:
    """Full-key search bound for a value-level comparison."""
    if comparison in ("=", ">="):
        return IndexKey(value, MIN_RID)
    if comparison == ">":
        return IndexKey(value, MAX_RID)
    raise ValueError(f"unsupported fetch comparison {comparison!r}")


def index_fetch(
    tree: "BTree",
    txn: "Transaction",
    value: bytes,
    comparison: str = "=",
    cursor: Cursor | None = None,
    isolation: str = "rr",
) -> FetchResult:
    """Figure 5.  ``comparison`` is the starting condition (=, >=, >).

    Pass a :class:`Cursor` to open a range scan; its position is set to
    the returned key so :func:`index_fetch_next` can continue from it.
    ``isolation`` is "rr" (repeatable read, default), "cs" (cursor
    stability: the current-key lock is manual-duration and the caller
    releases it via ``result.lock_name`` when moving off the record),
    or "snapshot" (MVCC read: latches only, **no lock requests** —
    visibility is the caller's job, via the heap version stamps).
    """
    ctx = tree.ctx
    ctx.stats.incr("btree.op.fetch")
    bound = _search_bound(value, comparison)
    while True:
        descent = tree.traverse(bound, for_update=False, txn=txn)
        leaf = descent.leaf
        descent.unlatch_parent(tree)
        pos, _ = leaf.find_key(bound)
        try:
            candidate, cand_page = tree.find_next_key(leaf, pos)
            held = [leaf, cand_page]
            lock_name = None
            if isolation != "snapshot":
                spec = tree.protocol.fetch_lock(tree, candidate, isolation)
                request_locks(tree, txn, [spec], held)
                lock_name = spec.name
        except RestartOperation:
            continue
        if candidate is not None and cursor is not None:
            assert cand_page is not None
            cand_pos, exact = cand_page.find_key(candidate)
            assert exact
            cursor.note_position(cand_page, cand_pos, candidate)
        release_pages(tree, held)
        if candidate is None:
            if cursor is not None:
                cursor.at_eof = True
            return FetchResult(found=False, key=None, eof=True, lock_name=lock_name)
        found = candidate.value == value if comparison == "=" else True
        return FetchResult(found=found, key=candidate, eof=False, lock_name=lock_name)


def index_fetch_next(
    tree: "BTree",
    txn: "Transaction",
    cursor: Cursor,
    stop_value: bytes | None = None,
    stop_comparison: str = "<=",
    isolation: str = "rr",
) -> FetchResult:
    """§2.3.  Advance the cursor to the next key and lock it.

    ``stop_value``/``stop_comparison`` express the key-range stopping
    condition; a key beyond it yields a not-found result (the key is
    still locked — that lock is precisely what makes the *end* of the
    range repeatable).
    """
    ctx = tree.ctx
    ctx.stats.incr("btree.op.fetch_next")
    if cursor.at_eof or cursor.current_key is None:
        return FetchResult(found=False, key=None, eof=True)
    # §2.3's shortcut: in a unique index with an equality stop condition,
    # the current position already satisfies the whole range.
    if (
        tree.unique
        and stop_value is not None
        and stop_comparison == "="
        and cursor.current_key.value == stop_value
    ):
        return FetchResult(found=False, key=None, eof=False)
    while True:
        try:
            candidate, cand_page, held = _locate_successor(tree, txn, cursor)
            lock_name = None
            if isolation != "snapshot":
                spec = tree.protocol.fetch_lock(tree, candidate, isolation)
                request_locks(tree, txn, [spec], held)
                lock_name = spec.name
        except RestartOperation:
            continue
        if candidate is None:
            release_pages(tree, held)
            cursor.at_eof = True
            return FetchResult(found=False, key=None, eof=True, lock_name=lock_name)
        assert cand_page is not None
        cand_pos, exact = cand_page.find_key(candidate)
        assert exact
        cursor.note_position(cand_page, cand_pos, candidate)
        release_pages(tree, held)
        if stop_value is not None and not _within_stop(
            candidate.value, stop_value, stop_comparison
        ):
            return FetchResult(
                found=False, key=candidate, eof=False, lock_name=lock_name
            )
        return FetchResult(found=True, key=candidate, eof=False, lock_name=lock_name)


def _locate_successor(
    tree: "BTree", txn: "Transaction", cursor: Cursor
) -> tuple[IndexKey | None, IndexPage | None, list[IndexPage | None]]:
    """Find the key after the cursor position, fast path or reposition.

    Returns (candidate, page holding it, pages currently latched)."""
    current = cursor.current_key
    assert current is not None
    try:
        leaf = tree.fix_and_latch(cursor.leaf_id, "S")
    except PageNotFoundError:
        leaf = None
    if leaf is not None:
        if (
            isinstance(leaf, IndexPage)
            and leaf.is_leaf
            and leaf.index_id == tree.index_id
            and leaf.page_lsn == cursor.page_lsn
        ):
            # Unchanged since we noted it: the next key is the next slot.
            tree.ctx.stats.incr("btree.cursor_fast_path")
            candidate, cand_page = tree.find_next_key(leaf, cursor.pos + 1)
            return candidate, cand_page, [leaf, cand_page]
        tree.unlatch_unfix(leaf)
    # Page changed (or vanished): reposition with a full traversal, as
    # for a Fetch of the first key greater than the current one.
    tree.ctx.stats.incr("btree.cursor_repositions")
    descent = tree.traverse(current, for_update=False, txn=txn)
    leaf = descent.leaf
    descent.unlatch_parent(tree)
    pos, exact = leaf.find_key(current)
    if exact:
        pos += 1
    candidate, cand_page = tree.find_next_key(leaf, pos)
    return candidate, cand_page, [leaf, cand_page]


def _within_stop(value: bytes, stop_value: bytes, comparison: str) -> bool:
    if comparison == "<":
        return value < stop_value
    if comparison == "<=":
        return value <= stop_value
    if comparison == "=":
        return value == stop_value
    raise ValueError(f"unsupported stop comparison {comparison!r}")
