"""The ARIES/IM B+-tree index manager (the paper's core contribution)."""

from repro.btree.delete import index_delete
from repro.btree.fetch import Cursor, FetchResult, index_fetch, index_fetch_next
from repro.btree.insert import index_insert
from repro.btree.node import IndexPage
from repro.btree.protocol import (
    PROTOCOLS,
    DataOnlyLocking,
    IndexSpecificLocking,
    KeyValueLocking,
    LockingProtocol,
    LockSpec,
    SystemRStyleLocking,
    make_protocol,
)
from repro.btree.recovery import BTreeResourceManager
from repro.btree.tree import BTree, Descent

__all__ = [
    "PROTOCOLS",
    "BTree",
    "BTreeResourceManager",
    "Cursor",
    "DataOnlyLocking",
    "Descent",
    "FetchResult",
    "IndexPage",
    "IndexSpecificLocking",
    "KeyValueLocking",
    "LockSpec",
    "LockingProtocol",
    "SystemRStyleLocking",
    "index_delete",
    "index_fetch",
    "index_fetch_next",
    "index_insert",
    "make_protocol",
]
