"""Index page layout (§1.1).

- A key in a leaf page is a (key-value, RID) pair; the records live in
  data pages outside the tree.
- Leaf pages are forward and backward chained.
- Every nonleaf page holds child pointers and one fewer high keys: each
  high key belongs to one child, the rightmost child has none, and a
  child's high key is strictly greater than the highest key actually
  stored in (the subtree of) that child.
- Every page carries the **SM_Bit** (set while the page participates in
  an uncompleted structure modification, §2.1) and leaves carry the
  **Delete_Bit** (set by a key delete, §3 / Figure 11).

Both bits are *physical hints*: setting them is logged as part of the
SMO/delete records, but resetting them is deliberately unlogged — a
stale '1' after a crash is safe (it only makes a traverser take an
instant tree latch that is immediately granted), exactly the laziness
the paper allows ("The SM_Bit can be reset to '0' once the SMO which
caused it to be set has been completed").
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.common.errors import IndexError_
from repro.common.rid import RID, IndexKey
from repro.storage.page import PAGE_OVERHEAD, Page

_LEAF_ENTRY_OVERHEAD = 8
_NONLEAF_ENTRY_OVERHEAD = 16


class IndexPage(Page):
    """One B+-tree page (leaf or nonleaf)."""

    KIND = "index"

    def __init__(self, page_id: int, index_id: int, level: int) -> None:
        super().__init__(page_id)
        self.index_id = index_id
        self.level = level  # 0 = leaf
        self.sm_bit = False
        self.delete_bit = False
        # Leaf state:
        self.keys: list[IndexKey] = []
        self.prev_leaf = 0
        self.next_leaf = 0
        # Nonleaf state: parallel lists of child ids and high keys; the
        # rightmost high key is always None.
        self.child_ids: list[int] = []
        self.high_keys: list[IndexKey | None] = []

    # -- basics ---------------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def entry_count(self) -> int:
        return len(self.keys) if self.is_leaf else len(self.child_ids)

    def is_empty(self) -> bool:
        return self.entry_count() == 0

    # -- serialization -----------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        return {
            "index_id": self.index_id,
            "level": self.level,
            "sm_bit": self.sm_bit,
            "delete_bit": self.delete_bit,
            "keys": list(self.keys),
            "prev_leaf": self.prev_leaf,
            "next_leaf": self.next_leaf,
            "child_ids": list(self.child_ids),
            "high_keys": list(self.high_keys),
        }

    @classmethod
    def from_payload(cls, page_id: int, payload: dict[str, Any]) -> "IndexPage":
        page = cls(page_id, payload["index_id"], payload["level"])
        page.sm_bit = payload["sm_bit"]
        page.delete_bit = payload["delete_bit"]
        page.keys = list(payload["keys"])
        page.prev_leaf = payload["prev_leaf"]
        page.next_leaf = payload["next_leaf"]
        page.child_ids = list(payload["child_ids"])
        page.high_keys = list(payload["high_keys"])
        return page

    def load_payload(self, payload: dict[str, Any]) -> None:
        """Overwrite this page's body in place (SMO undo / root ops)."""
        self.index_id = payload["index_id"]
        self.level = payload["level"]
        self.sm_bit = payload["sm_bit"]
        self.delete_bit = payload["delete_bit"]
        self.keys = list(payload["keys"])
        self.prev_leaf = payload["prev_leaf"]
        self.next_leaf = payload["next_leaf"]
        self.child_ids = list(payload["child_ids"])
        self.high_keys = list(payload["high_keys"])

    def used_size(self) -> int:
        total = PAGE_OVERHEAD
        if self.is_leaf:
            for key in self.keys:
                total += key.encoded_size() + _LEAF_ENTRY_OVERHEAD
        else:
            for high in self.high_keys:
                total += _NONLEAF_ENTRY_OVERHEAD
                if high is not None:
                    total += high.encoded_size()
        return total

    def has_room_for_key(self, key: IndexKey, page_size: int) -> bool:
        return self.used_size() + key.encoded_size() + _LEAF_ENTRY_OVERHEAD <= page_size

    def has_room_for_child(self, high: IndexKey | None, page_size: int) -> bool:
        extra = _NONLEAF_ENTRY_OVERHEAD + (high.encoded_size() if high else 0)
        return self.used_size() + extra <= page_size

    # -- leaf operations ------------------------------------------------------------

    def find_key(self, key: IndexKey) -> tuple[int, bool]:
        """(position, exact-match?) for ``key`` in a leaf."""
        pos = bisect.bisect_left(self.keys, key)
        found = pos < len(self.keys) and self.keys[pos] == key
        return pos, found

    def position_for_value(self, value: bytes) -> int:
        """Position of the first key whose value is >= ``value``."""
        lo, hi = 0, len(self.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.keys[mid].value < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def insert_key(self, key: IndexKey) -> int:
        pos = bisect.bisect_left(self.keys, key)
        if pos < len(self.keys) and self.keys[pos] == key:
            raise IndexError_(f"key {key!r} already present on page {self.page_id}")
        self.keys.insert(pos, key)
        return pos

    def remove_key(self, key: IndexKey) -> int:
        pos = bisect.bisect_left(self.keys, key)
        if pos >= len(self.keys) or self.keys[pos] != key:
            raise IndexError_(f"key {key!r} not on page {self.page_id}")
        del self.keys[pos]
        return pos

    def contains_value(self, value: bytes) -> bool:
        pos = self.position_for_value(value)
        return pos < len(self.keys) and self.keys[pos].value == value

    def lowest_key(self) -> IndexKey | None:
        return self.keys[0] if self.keys else None

    def highest_key(self) -> IndexKey | None:
        return self.keys[-1] if self.keys else None

    def bounds_key(self, key: IndexKey) -> bool:
        """Is ``key`` *bound* on this leaf — both a lower and a higher
        key present (§3, reason 3 for logical undo)?"""
        if len(self.keys) < 2:
            return False
        return self.keys[0] < key < self.keys[-1]

    # -- nonleaf operations ------------------------------------------------------------

    def max_high_key(self) -> IndexKey | None:
        """The largest high key actually stored (None if the page has
        fewer than two children, i.e. no high keys at all)."""
        if len(self.high_keys) < 2:
            return None
        return self.high_keys[-2]

    def child_for(self, key: IndexKey) -> int:
        """Route ``key``: the first child whose high key is > key, else
        the rightmost child."""
        if not self.child_ids:
            raise IndexError_(f"nonleaf page {self.page_id} has no children")
        for child_id, high in zip(self.child_ids, self.high_keys):
            if high is None or key < high:
                return child_id
        return self.child_ids[-1]

    def child_position(self, child_id: int) -> int:
        try:
            return self.child_ids.index(child_id)
        except ValueError:
            raise IndexError_(
                f"page {child_id} is not a child of page {self.page_id}"
            ) from None

    def insert_split_entry(
        self, left_child: int, right_child: int, separator: IndexKey
    ) -> None:
        """Record that ``left_child`` split: it keeps keys < separator,
        ``right_child`` takes the rest and inherits left's old high key."""
        pos = self.child_position(left_child)
        old_high = self.high_keys[pos]
        self.high_keys[pos] = separator
        self.child_ids.insert(pos + 1, right_child)
        self.high_keys.insert(pos + 1, old_high)

    def remove_child(self, child_id: int) -> IndexKey | None:
        """Remove a (deleted) child's entry; returns its old high key.

        If the removed child was the rightmost, the new rightmost entry
        loses its high key (the rightmost child is always unbounded).
        """
        pos = self.child_position(child_id)
        old_high = self.high_keys[pos]
        del self.child_ids[pos]
        del self.high_keys[pos]
        if self.high_keys and pos == len(self.high_keys):
            self.high_keys[-1] = None
        return old_high

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"nonleaf(level={self.level})"
        bits = []
        if self.sm_bit:
            bits.append("SM")
        if self.delete_bit:
            bits.append("DEL")
        flag = f" bits={'|'.join(bits)}" if bits else ""
        return (
            f"<IndexPage {self.page_id} {kind} idx={self.index_id} "
            f"n={self.entry_count()} lsn={self.page_lsn}{flag}>"
        )
