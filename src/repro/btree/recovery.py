"""B+-tree redo and undo handlers (§3).

**Redo is always page-oriented**: each record names its page and the
change is reapplied there, never by traversing the tree.

**Undo is page-oriented whenever possible.**  A key insert/delete is
undone on its original page unless one of the paper's four reasons
forces a *logical* undo (a fresh traversal from the root):

1. not enough free space to undo a key delete (a split would be
   needed — the space was consumed meanwhile, Figure 11's subject);
2. the key definitely no longer belongs on the page (key gone after an
   intervening split for insert-undo; page no longer this index's leaf
   for delete-undo);
3. it is ambiguous whether the key belongs: the key to put back is not
   *bound* (no lower and higher key both present) on the page;
4. the undo would empty the page, requiring a page-delete SMO.

Logical undos call the ordinary action routines with ``clr_for`` set:
the compensating key change is logged as a CLR on whatever page it
actually lands on, while any SMO it triggers is logged with regular
undo-redo records — §3's exception to CLR-only undo logging, needed so
a crash mid-undo-SMO can itself be cleaned up.

SMO records (``page_format``, ``leaf_shrink``, ``chain_*``,
``set_page``) are only ever undone when their nested top action never
completed; those undos are strictly page-oriented state restorations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import PageNotFoundError, RecoveryError
from repro.common.rid import IndexKey
from repro.btree.node import IndexPage
from repro.btree.smo import freed_payload
from repro.storage.page import Page
from repro.wal.records import LogRecord, clr_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.btree.tree import BTree
    from repro.db import Database
    from repro.txn.transaction import Transaction


class BTreeResourceManager:
    """Redo/undo dispatch for ``rm == "btree"`` log records."""

    # -- redo ---------------------------------------------------------------

    def apply_redo(self, ctx: "Database", page: Page, record: LogRecord) -> None:
        """Reapply ``record``'s change to the already-fixed ``page``
        (the driver has verified page_lsn < record.lsn)."""
        op = record.op
        if not isinstance(page, IndexPage):
            raise RecoveryError(
                f"redo of {op!r} targets non-index page {record.page_id}"
            )
        payload = record.payload
        if op == "page_format":
            ctx.disk.ensure_allocator_above(record.page_id)
            page.load_payload(payload["page"])
        elif op in ("insert_key", "insert_key_c"):
            page.insert_key(payload["key"])
        elif op in ("delete_key", "delete_key_c"):
            key: IndexKey = payload["key"]
            # Register the dead key *before* removal so no replay
            # prefix has it absent from both the tree and the side
            # store (the heap delete's redo lands later in the log).
            ctx.mvcc_note_dead_key(
                payload["index_id"], key.value, key.rid, record.txn_id
            )
            page.remove_key(key)
            if payload.get("set_delete_bit"):
                page.delete_bit = True
        elif op == "leaf_shrink":
            for key in payload["moved"]:
                page.remove_key(key)
            page.next_leaf = payload["new_next"]
            page.sm_bit = True
        elif op == "chain_prev":
            page.prev_leaf = payload["after"]
        elif op == "chain_next":
            page.next_leaf = payload["after"]
        elif op == "set_page":
            page.load_payload(payload["after"])
        elif op == "set_page_c":
            page.load_payload(payload["state"])
        else:
            raise RecoveryError(f"unknown btree op {op!r}")

    def make_shell(self, record: LogRecord) -> IndexPage:
        return IndexPage(record.page_id, 0, 0)

    # -- undo ----------------------------------------------------------------

    def undo(self, ctx: "Database", txn: "Transaction", record: LogRecord) -> None:
        op = record.op
        if op == "insert_key":
            self._undo_insert_key(ctx, txn, record)
        elif op == "delete_key":
            self._undo_delete_key(ctx, txn, record)
        elif op in ("page_format", "leaf_shrink", "chain_prev", "chain_next", "set_page"):
            self._undo_smo_record(ctx, txn, record)
        else:
            raise RecoveryError(f"btree op {op!r} is not undoable")

    # .. key operations ..........................................................

    def _undo_insert_key(
        self, ctx: "Database", txn: "Transaction", record: LogRecord
    ) -> None:
        """Undo a key insert: remove the key, page-oriented if it is
        still on its original page and removal will not empty it."""
        tree = ctx.index_by_id(record.payload["index_id"])
        key: IndexKey = record.payload["key"]
        page = self._try_fix_leaf(ctx, tree, record.page_id)
        if page is not None:
            ctx.latches.latch_page(page.page_id, "X")
            page_oriented = False
            try:
                _, present = page.find_key(key)
                if present and (
                    len(page.keys) >= 2 or page.page_id == tree.root_page_id
                ):
                    clr = clr_record(
                        txn.txn_id,
                        "btree",
                        "delete_key_c",
                        page.page_id,
                        {"index_id": tree.index_id, "key": key, "set_delete_bit": False},
                        undo_next_lsn=record.prev_lsn,
                    )
                    lsn = ctx.txns.log_for(txn, clr)
                    page.remove_key(key)
                    page.page_lsn = lsn
                    ctx.buffer.mark_dirty(page.page_id, lsn)
                    page_oriented = True
            finally:
                ctx.latches.unlatch_page(page.page_id)
                ctx.buffer.unfix(page.page_id)
            if page_oriented:
                ctx.stats.incr("btree.undo.page_oriented")
                return
        # Reasons 2 (key moved by a split) or 4 (page would empty,
        # needing a page-delete SMO): undo logically.
        ctx.stats.incr("btree.undo.logical")
        from repro.btree.delete import index_delete

        index_delete(tree, txn, key, clr_for=record)

    def _undo_delete_key(
        self, ctx: "Database", txn: "Transaction", record: LogRecord
    ) -> None:
        """Undo a key delete: put the key back, page-oriented only if
        the page is still this index's leaf, the key is *bound* there,
        and there is room (reasons 1–3 otherwise)."""
        tree = ctx.index_by_id(record.payload["index_id"])
        key: IndexKey = record.payload["key"]
        page = self._try_fix_leaf(ctx, tree, record.page_id)
        if page is not None:
            ctx.latches.latch_page(page.page_id, "X")
            page_oriented = False
            try:
                applicable = page.bounds_key(key) and page.has_room_for_key(
                    key, ctx.config.page_size
                )
                if applicable:
                    clr = clr_record(
                        txn.txn_id,
                        "btree",
                        "insert_key_c",
                        page.page_id,
                        {"index_id": tree.index_id, "key": key},
                        undo_next_lsn=record.prev_lsn,
                    )
                    lsn = ctx.txns.log_for(txn, clr)
                    page.insert_key(key)
                    page.page_lsn = lsn
                    ctx.buffer.mark_dirty(page.page_id, lsn)
                    page_oriented = True
            finally:
                ctx.latches.unlatch_page(page.page_id)
                ctx.buffer.unfix(page.page_id)
            if page_oriented:
                ctx.stats.incr("btree.undo.page_oriented")
                return
        ctx.stats.incr("btree.undo.logical")
        from repro.btree.insert import index_insert

        index_insert(tree, txn, key, clr_for=record)

    def _try_fix_leaf(
        self, ctx: "Database", tree: "BTree", page_id: int
    ) -> IndexPage | None:
        """Fix the original page if it still exists and is still a leaf
        of this index; None forces the logical path."""
        try:
            page = ctx.buffer.fix(page_id)  # noqa: RPR001 - ownership transfer: caller unfixes
        except PageNotFoundError:
            return None
        if (
            isinstance(page, IndexPage)
            and page.index_id == tree.index_id
            and page.is_leaf
        ):
            return page
        ctx.buffer.unfix(page_id)
        return None

    # .. SMO records (incomplete-SMO rollback only) ..................................

    def _undo_smo_record(
        self, ctx: "Database", txn: "Transaction", record: LogRecord
    ) -> None:
        """Restore the pre-record state of one page and log it as a CLR
        carrying the full restored state (redo-only)."""
        page = self._fix_or_shell(ctx, record.page_id)
        ctx.latches.latch_page(record.page_id, "X")
        try:
            payload = record.payload
            op = record.op
            if op == "page_format":
                page.load_payload(freed_payload(record.page_id))
            elif op == "leaf_shrink":
                for key in payload["moved"]:
                    page.insert_key(key)
                page.next_leaf = payload["old_next"]
                page.sm_bit = payload["sm_bit_before"]
            elif op == "chain_prev":
                page.prev_leaf = payload["before"]
            elif op == "chain_next":
                page.next_leaf = payload["before"]
            elif op == "set_page":
                page.load_payload(payload["before"])
            clr = clr_record(
                txn.txn_id,
                "btree",
                "set_page_c",
                record.page_id,
                {"state": page.to_payload()},
                undo_next_lsn=record.prev_lsn,
            )
            lsn = ctx.txns.log_for(txn, clr)
            page.page_lsn = lsn
            ctx.buffer.mark_dirty(record.page_id, lsn)
            ctx.stats.incr("btree.undo.smo_records")
        finally:
            ctx.latches.unlatch_page(record.page_id)
            ctx.buffer.unfix(record.page_id)

    def _fix_or_shell(self, ctx: "Database", page_id: int) -> IndexPage:
        """Fix the page, materializing an empty shell if it was never
        flushed (its creating record was lost with the crash, but a
        later flushed record may still name it)."""
        try:
            page = ctx.buffer.fix(page_id)  # noqa: RPR001 - ownership transfer: caller unfixes
        except PageNotFoundError:
            shell = IndexPage(page_id, 0, 0)
            ctx.buffer.fix_new(shell)  # noqa: RPR001 - ownership transfer: caller unfixes
            return shell
        if not isinstance(page, IndexPage):
            ctx.buffer.unfix(page_id)
            raise RecoveryError(f"SMO undo targets non-index page {page_id}")
        return page
