"""Shared machinery for the index action routines.

Implements the paper's lock/latch interaction discipline (§2.2):

    all the lock calls are described as if they would be granted right
    away [...] if the lock is not granted when requested conditionally,
    then (1) all the latches must be released, (2) the lock must be
    requested unconditionally, and (3) once the lock is granted, a
    verification must be performed [...]

:func:`request_locks` performs steps (1) and (2) and signals step (3)
to the caller by raising :class:`RestartOperation`; every action
routine catches it and restarts from its traversal, which *is* the
verification (the world is re-derived from scratch).

Rolling-back transactions request no locks at all (§4) — every helper
here no-ops for them, except the §5 tree lock which is handled in
:mod:`repro.btree.tree`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Sequence

from repro.common.errors import LockNotGrantedError
from repro.btree.node import IndexPage
from repro.btree.protocol import LockSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.btree.tree import BTree
    from repro.txn.transaction import Transaction


class Outcome(enum.Enum):
    """Result of one attempt at a leaf-level action."""

    DONE = "done"
    NEEDS_SPLIT = "needs_split"


class RestartOperation(Exception):
    """Internal control flow: latches were released to wait for a lock
    (or the SMO barrier); the operation must restart from traversal.

    ``smo_barrier_lost`` tells an SMO-path caller that it also gave up
    the tree latch/lock and must re-enter the SMO."""

    def __init__(self, smo_barrier_lost: bool = False) -> None:
        self.smo_barrier_lost = smo_barrier_lost
        super().__init__("operation restart required")


def release_pages(tree: "BTree", pages: Sequence[IndexPage | None]) -> None:
    """Unlatch and unfix every distinct non-None page."""
    seen: set[int] = set()
    for page in pages:
        if page is None or page.page_id in seen:
            continue
        seen.add(page.page_id)
        tree.unlatch_unfix(page)


def request_locks(
    tree: "BTree",
    txn: "Transaction",
    specs: Sequence[LockSpec],
    held_pages: Sequence[IndexPage | None],
    smo_barrier_held: bool = False,
) -> None:
    """Request ``specs`` conditionally while latches are held.

    On a miss: release all held page latches (and the SMO barrier if
    the caller holds it — no lock may be requested unconditionally
    while *any* latch is held, §2.2/§4), acquire the missed lock
    unconditionally, and raise :class:`RestartOperation`.

    The unconditionally acquired lock is *kept* (§2.2: "once the lock
    is granted, a verification must be performed ... a corrective
    action (e.g., requesting another lock)" — the original grant is
    retained).  An instant-duration spec is therefore upgraded to a
    held lock for the rest of the transaction; dropping it instead
    would let two contenders ping-pong conditional misses forever.
    """
    if txn.in_rollback:
        return
    ctx = tree.ctx
    from repro.locks.modes import LockDuration

    for position, spec in enumerate(specs):
        try:
            ctx.locks.request(
                txn.txn_id, spec.name, spec.mode, spec.duration, conditional=True
            )
        except LockNotGrantedError:
            release_pages(tree, held_pages)
            if smo_barrier_held:
                tree.smo_end(txn)
            ctx.stats.incr("btree.lock_dances")

            def retained(duration: "LockDuration") -> "LockDuration":
                if duration is LockDuration.INSTANT:
                    return LockDuration.MANUAL  # released at txn end
                return duration

            ctx.locks.request(
                txn.txn_id, spec.name, spec.mode, retained(spec.duration)
            )
            # Grab the rest unconditionally too; the restart re-derives
            # and re-requests everything anyway, but this avoids doing
            # the conditional-miss dance once per remaining spec.
            for later in specs[position + 1 :]:
                ctx.locks.request(
                    txn.txn_id, later.name, later.mode, retained(later.duration)
                )
            raise RestartOperation(smo_barrier_lost=smo_barrier_held) from None


def same_value_nearby(
    leaf: IndexPage, pos: int, value: bytes, next_key
) -> bool:
    """Is another key with ``value`` visible around position ``pos``?

    Used for the KVL baseline's value-existence conditions.  Checks the
    predecessor on this page and the already-located next key; a
    duplicate that is the last key of the *previous* leaf is missed —
    an approximation that can only make KVL look cheaper (documented in
    DESIGN.md §6), i.e. it biases *against* ARIES/IM in E7.
    """
    if pos > 0 and leaf.keys[pos - 1].value == value:
        return True
    return next_key is not None and next_key.value == value
