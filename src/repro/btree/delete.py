"""Key delete (Figure 7 / §2.5).

Flow per attempt:

1. Traverse to the leaf (X latch).
2. If SM_Bit is '1', wait out the in-progress SMO (instant S barrier)
   and reset it (Figure 7).
3. Unlatch the parent; find the next key (maybe on the next leaf) and
   request the protocol's delete locks — for ARIES/IM an X lock of
   *commit* duration on the next key: the deleter's trace that warns
   other transactions about the uncommitted delete (§2.6).
4. If the delete would empty the page, enter the page-deletion path
   (Figure 8) in :mod:`repro.btree.smo` instead.
5. If the key is the smallest or largest on the page (a boundary key),
   establish a point of structural consistency first: S on the SMO
   barrier, *held until the delete completes* (§3, third reason for
   logical undo — the leaf must remain reachable from the root if this
   delete has to be undone after a crash).
6. Log and apply; the Delete_Bit is set (and folded into the log
   record for redo) unless the POSC made it unnecessary.

During rollback (``clr_for`` set) this routine performs the logical
undo of a key insert: no locks, delete logged as a CLR; a page delete
it triggers is logged with regular records (§3's exception).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import KeyNotFoundError
from repro.common.rid import IndexKey
from repro.btree.node import IndexPage
from repro.btree.ops_common import (
    RestartOperation,
    request_locks,
    same_value_nearby,
)
from repro.wal.records import RM_BTREE, LogRecord, clr_record, update_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.btree.tree import BTree
    from repro.txn.transaction import Transaction


def index_delete(
    tree: "BTree",
    txn: "Transaction",
    key: IndexKey,
    clr_for: LogRecord | None = None,
) -> None:
    """Delete the exact key (value, RID)."""
    ctx = tree.ctx
    ctx.stats.incr("btree.op.delete")
    config = ctx.config
    not_found_retries = 0
    while True:
        descent = tree.traverse(key, for_update=True, txn=txn)
        leaf = descent.leaf
        pos, found = leaf.find_key(key)
        if not found:
            # The key may have been carried to the right sibling by a
            # split that completed between our route decision and our
            # latch grant.  Wait out any SMO and re-route once before
            # concluding the key is genuinely missing.
            descent.release_all(tree)
            if not_found_retries == 0:
                not_found_retries += 1
                tree.smo_barrier_wait(txn)
                ctx.stats.incr("btree.stale_leaf_restarts")
                continue
            raise KeyNotFoundError(f"key {key!r} not in index {tree.name!r}")
        # Step 2: even an unambiguous leaf waits for an unfinished SMO
        # before modifying (§3: a premature delete could commit and then
        # be wiped out by the SMO's page-oriented undo).
        if leaf.sm_bit and config.enable_sm_bit:
            if tree.smo_barrier_try(txn):
                leaf.sm_bit = False
            else:
                descent.release_all(tree)
                tree.smo_barrier_wait(txn)
                ctx.stats.incr("btree.delete_bit_waits")
                continue
        descent.unlatch_parent(tree)
        try:
            next_key, next_page = tree.find_next_key(leaf, pos + 1)
            held: list[IndexPage | None] = [leaf, next_page]
            if clr_for is None and not txn.in_rollback:
                last_instance = not same_value_nearby(leaf, pos, key.value, next_key)
                specs = tree.protocol.delete_locks(tree, key, next_key, last_instance)
                request_locks(tree, txn, specs, held)
        except RestartOperation:
            continue
        if next_page is not None and next_page is not leaf:
            tree.unlatch_unfix(next_page)

        if len(leaf.keys) == 1 and leaf.page_id != tree.root_page_id:
            # Step 4: the page would become empty — Figure 8's page
            # deletion path (re-validates under the SMO barrier).
            tree.unlatch_unfix(leaf)
            from repro.btree.smo import delete_with_page_delete

            delete_with_page_delete(tree, txn, key, clr_for)
            return

        # Step 5: boundary-key POSC.
        boundary = pos == 0 or pos == len(leaf.keys) - 1
        posc_held = False
        if (
            boundary
            and config.enable_boundary_delete_posc
            and clr_for is None
            and not txn.in_rollback
        ):
            if tree.posc_try(txn):
                posc_held = True
            else:
                tree.unlatch_unfix(leaf)
                # Wait for structural consistency without holding any
                # latch, then re-derive everything.
                tree.smo_barrier_wait(txn)
                ctx.stats.incr("btree.boundary_posc_waits")
                continue

        _log_and_apply_delete(tree, txn, leaf, key, clr_for, posc_held)
        tree.unlatch_unfix(leaf)
        if posc_held:
            tree.posc_release(txn)
        return


def _log_and_apply_delete(
    tree: "BTree",
    txn: "Transaction",
    leaf: IndexPage,
    key: IndexKey,
    clr_for: LogRecord | None,
    posc_held: bool,
) -> None:
    ctx = tree.ctx
    # Figure 7: the Delete_Bit warns later space consumers (Figure 11);
    # it is unnecessary when the POSC is held for this delete, and a CLR
    # delete can never itself be undone.
    set_bit = (
        ctx.config.enable_delete_bit
        and not posc_held
        and clr_for is None
    )
    payload = {"index_id": tree.index_id, "key": key, "set_delete_bit": set_bit}
    if clr_for is None:
        record = update_record(txn.txn_id, RM_BTREE, "delete_key", leaf.page_id, payload)
    else:
        record = clr_record(
            txn.txn_id,
            RM_BTREE,
            "delete_key_c",
            leaf.page_id,
            payload,
            undo_next_lsn=clr_for.prev_lsn,
        )
    lsn = ctx.txns.log_for(txn, record)
    leaf.remove_key(key)
    if set_bit:
        leaf.delete_bit = True
    leaf.page_lsn = lsn
    ctx.buffer.mark_dirty(leaf.page_id, lsn)
    ctx.stats.incr("btree.keys_deleted")
    ctx.failpoints.hit("btree.delete.after_log")
