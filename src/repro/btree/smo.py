"""Structure modification operations (Figures 8, 9, 10).

Every SMO runs under the SMO barrier (the X tree latch of §2.1, or the
§5 tree lock) and inside a **nested top action**: its log records are
regular undo-redo records, and a dummy CLR written at the end makes a
later rollback of the enclosing transaction skip them (Figure 9/10).
A crash *before* the dummy CLR leaves the records undoable, so restart
undo restores structural consistency page-oriented — which is safe
precisely because the barrier plus SM_Bits kept everyone else from
modifying the affected pages meanwhile (§3).

Ordering (Figure 8):

- a split happens *before* the insert that needs it, so the insert's
  record lands after the dummy CLR and is undone on rollback while the
  split survives;
- a page delete happens *after* the key delete that empties the page,
  with the dummy CLR pointing at the key-delete record, so the key
  delete is undone (logically — the page is gone) while the page
  delete survives.

Splits move the higher keys right (§2.1).  Propagation is bottom-up:
leaf-level latches are released before any higher-level page is
latched, which is why traversers can momentarily see an inconsistent
tree and why the SM_Bit exists (Figure 3).

Simplification vs. the paper: Figure 8 pre-fixes the needed pages in
the buffer pool and acquires the tree latch conditionally while still
holding the leaf latch, to shorten the latch hold.  This implementation
releases its latches and (re)enters the barrier unconditionally, then
re-traverses — identical behaviour, a few more page visits, honestly
counted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import IndexError_, KeyNotFoundError
from repro.common.rid import IndexKey
from repro.btree.insert import try_insert_on_leaf
from repro.btree.node import IndexPage
from repro.btree.ops_common import Outcome, RestartOperation
from repro.btree.tree import BTree
from repro.wal.records import RM_BTREE, LogRecord, clr_record, update_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.txn.transaction import Transaction


# ---------------------------------------------------------------------------
# Logging helpers
# ---------------------------------------------------------------------------


def _log_apply(
    tree: BTree,
    txn: "Transaction",
    page: IndexPage,
    op: str,
    payload: dict,
    apply,
) -> int:
    """Write one SMO update record and apply it to the latched page."""
    record = update_record(txn.txn_id, RM_BTREE, op, page.page_id, payload)
    lsn = tree.ctx.txns.log_for(txn, record)
    apply()
    page.page_lsn = lsn
    tree.ctx.buffer.mark_dirty(page.page_id, lsn)
    return lsn


def _log_set_page(
    tree: BTree, txn: "Transaction", page: IndexPage, mutate
) -> int:
    """Full before/after state change of one (small) page."""
    before = page.to_payload()
    mutate()
    after = page.to_payload()
    record = update_record(
        txn.txn_id,
        RM_BTREE,
        "set_page",
        page.page_id,
        {"before": before, "after": after},
    )
    lsn = tree.ctx.txns.log_for(txn, record)
    page.page_lsn = lsn
    tree.ctx.buffer.mark_dirty(page.page_id, lsn)
    return lsn


def freed_payload(page_id: int) -> dict:
    """Body of a deallocated page (index_id 0 marks it free; page ids
    are never reused, so free pages are inert)."""
    ghost = IndexPage(page_id, 0, 0)
    return ghost.to_payload()


# ---------------------------------------------------------------------------
# Split path (insert-triggered, Figures 8 and 9)
# ---------------------------------------------------------------------------


def split_and_insert(
    tree: BTree,
    txn: "Transaction",
    key: IndexKey,
    clr_for: LogRecord | None,
    probed: bool = False,
) -> None:
    """Figure 8, split case: under the SMO barrier, split (as a nested
    top action) until the key fits, then insert it — still under the
    barrier, so the instant next-key lock is taken on a stable tree."""
    from repro.btree.insert import UniqueProbeNeeded, _unique_probe

    ctx = tree.ctx
    tree.smo_begin(txn)
    barrier_held = True
    try:
        while True:
            if not barrier_held:
                tree.smo_begin(txn)
                barrier_held = True
            descent = tree.traverse(key, for_update=True, txn=txn)
            leaf = descent.leaf
            descent.unlatch_parent(tree)
            # Holding the barrier is a POSC: the bits can be reset.
            leaf.sm_bit = False
            leaf.delete_bit = False
            try:
                outcome = try_insert_on_leaf(
                    tree, txn, leaf, key, clr_for,
                    smo_barrier_held=True, probed=probed,
                )
            except RestartOperation as restart:
                if restart.smo_barrier_lost:
                    barrier_held = False
                continue
            except UniqueProbeNeeded:
                # No lock may be requested unconditionally while the
                # barrier (a latch) is held: drop it around the probe.
                tree.smo_end(txn)
                barrier_held = False
                _unique_probe(tree, txn, key)
                probed = True
                continue
            if outcome is Outcome.DONE:
                return
            # Outcome.NEEDS_SPLIT (leaf latch already released).
            _split_leaf_covering(tree, txn, key)
            ctx.stats.incr("btree.splits_for_insert")
    finally:
        if barrier_held:
            tree.smo_end(txn)


def _split_leaf_covering(tree: BTree, txn: "Transaction", search: IndexKey) -> None:
    """Re-locate the full leaf covering ``search`` and split it as one
    nested top action.  No-ops if room appeared meanwhile."""
    descent = tree.traverse(search, for_update=True, txn=txn)
    leaf = descent.leaf
    descent.unlatch_parent(tree)
    if len(leaf.keys) < 2:
        # Cannot split a page with fewer than two keys; the caller's
        # size guard makes this unreachable for legal keys.
        tree.unlatch_unfix(leaf)
        raise IndexError_(
            f"page {leaf.page_id} too small to split (keys={len(leaf.keys)})"
        )
    if leaf.page_id == tree.root_page_id:
        # Growing the root is a nonleaf-level SMO: the §5 lock variant
        # upgrades to X first (no latches may be held across the lock
        # request).
        tree.unlatch_unfix(leaf)
        tree.smo_upgrade_for_nonleaf(txn)
        descent = tree.traverse(search, for_update=True, txn=txn)
        leaf = descent.leaf
        descent.unlatch_parent(tree)
        if leaf.page_id == tree.root_page_id:
            tree.unlatch_unfix(leaf)
            _grow_root(tree, txn)
        else:
            tree.unlatch_unfix(leaf)
        descent = tree.traverse(search, for_update=True, txn=txn)
        leaf = descent.leaf
        descent.unlatch_parent(tree)
    if not leaf.has_room_for_key(search, tree.ctx.config.page_size):
        _perform_split(tree, txn, leaf)
    else:
        tree.unlatch_unfix(leaf)


def _grow_root(tree: BTree, txn: "Transaction") -> None:
    """Move the root's contents into a fresh child so the root page id
    never changes; the root becomes a one-child nonleaf one level up.
    Logged as part of the enclosing NTA."""
    ctx = tree.ctx
    root = tree.fix_and_latch(tree.root_page_id, "X")
    tree.ctx.txns.begin_nta(txn)
    try:
        child_id = ctx.disk.allocate_page_id()
        child = IndexPage(child_id, tree.index_id, root.level)
        child.keys = list(root.keys)
        child.child_ids = list(root.child_ids)
        child.high_keys = list(root.high_keys)
        child.sm_bit = True
        ctx.buffer.fix_new(child)  # noqa: RPR001 - unfixed below once formatted and logged
        record = update_record(
            txn.txn_id,
            RM_BTREE,
            "page_format",
            child_id,
            {"page": child.to_payload()},
        )
        lsn = ctx.txns.log_for(txn, record)
        child.page_lsn = lsn
        ctx.buffer.mark_dirty(child_id, lsn)
        ctx.buffer.unfix(child_id)

        def make_root_nonleaf() -> None:
            root.level = root.level + 1
            root.keys = []
            root.child_ids = [child_id]
            root.high_keys = [None]
            root.sm_bit = True
            root.delete_bit = False

        _log_set_page(tree, txn, root, make_root_nonleaf)
        ctx.failpoints.hit("smo.root_grow.before_dummy_clr")
        ctx.txns.end_nta(txn)
    except BaseException:
        ctx.txns.abandon_nta(txn)
        raise
    finally:
        tree.unlatch_unfix(root)
    _maybe_reset_bits(tree, [tree.root_page_id, child_id])
    ctx.stats.incr("btree.root_grows")


def _perform_split(tree: BTree, txn: "Transaction", leaf: IndexPage) -> None:
    """Split one X-latched non-root page (leaf or nonleaf) to the right
    as a nested top action (Figure 9).  Consumes the latch."""
    ctx = tree.ctx
    ctx.txns.begin_nta(txn)
    affected = [leaf.page_id]
    try:
        if leaf.is_leaf:
            separator, right_id = _split_leaf_level(tree, txn, leaf, affected)
        else:
            separator, right_id = _split_nonleaf_level(tree, txn, leaf, affected)
        left_id = leaf.page_id
        level_above = leaf.level + 1
        tree.unlatch_unfix(leaf)
        ctx.failpoints.hit("smo.split.after_leaf_level")
        _propagate_split(
            tree, txn, left_id, right_id, separator, level_above, affected
        )
        ctx.failpoints.hit("smo.split.before_dummy_clr")
        ctx.txns.end_nta(txn)
    except BaseException:
        ctx.txns.abandon_nta(txn)
        raise
    _maybe_reset_bits(tree, affected)
    ctx.stats.incr("btree.page_splits")


def _split_point(page: IndexPage) -> int:
    """Index of the first entry that moves right: balance by byte size."""
    if page.is_leaf:
        sizes = [k.encoded_size() + 4 for k in page.keys]
    else:
        sizes = [
            10 + (h.encoded_size() if h is not None else 0) for h in page.high_keys
        ]
    total = sum(sizes)
    acc = 0
    for position, size in enumerate(sizes):
        acc += size
        if acc * 2 >= total:
            split_at = position + 1
            break
    else:  # pragma: no cover - sizes is never empty here
        split_at = len(sizes) // 2
    return min(max(split_at, 1), len(sizes) - 1)


def _split_leaf_level(
    tree: BTree, txn: "Transaction", leaf: IndexPage, affected: list[int]
) -> tuple[IndexKey, int]:
    """Leaf-level half of a split: format the right page, shrink the
    left, fix the right neighbour's back pointer."""
    ctx = tree.ctx
    split_at = _split_point(leaf)
    moved = leaf.keys[split_at:]
    separator = moved[0]
    old_next = leaf.next_leaf

    right_id = ctx.disk.allocate_page_id()
    right = IndexPage(right_id, tree.index_id, 0)
    right.keys = list(moved)
    right.prev_leaf = leaf.page_id
    right.next_leaf = old_next
    right.sm_bit = True
    ctx.buffer.fix_new(right)  # noqa: RPR001 - unfixed below once formatted and logged
    affected.append(right_id)
    record = update_record(
        txn.txn_id, RM_BTREE, "page_format", right_id, {"page": right.to_payload()}
    )
    lsn = ctx.txns.log_for(txn, record)
    right.page_lsn = lsn
    ctx.buffer.mark_dirty(right_id, lsn)
    ctx.buffer.unfix(right_id)

    def shrink() -> None:
        del leaf.keys[split_at:]
        leaf.next_leaf = right_id
        leaf.sm_bit = True

    _log_apply(
        tree,
        txn,
        leaf,
        "leaf_shrink",
        {
            "index_id": tree.index_id,
            "moved": list(moved),
            "old_next": old_next,
            "new_next": right_id,
            "sm_bit_before": leaf.sm_bit,
        },
        shrink,
    )
    ctx.failpoints.hit("smo.split.after_shrink")

    if old_next:
        # The old right neighbour's back pointer (latched on its own:
        # left-to-right order, never more than two page latches).
        neighbour = tree.fix_and_latch(old_next, "X")
        affected.append(old_next)

        def relink() -> None:
            neighbour.prev_leaf = right_id

        _log_apply(
            tree,
            txn,
            neighbour,
            "chain_prev",
            {"before": leaf.page_id, "after": right_id},
            relink,
        )
        tree.unlatch_unfix(neighbour)
    return separator, right_id


def _split_nonleaf_level(
    tree: BTree, txn: "Transaction", page: IndexPage, affected: list[int]
) -> tuple[IndexKey, int]:
    """Nonleaf split: left keeps entries[:m] with its last high key
    pushed up as the separator (and cleared to None, since the
    rightmost child of any page is unbounded within it)."""
    ctx = tree.ctx
    split_at = _split_point(page)
    separator = page.high_keys[split_at - 1]
    assert separator is not None, "interior split point always has a high key"

    right_id = ctx.disk.allocate_page_id()
    right = IndexPage(right_id, tree.index_id, page.level)
    right.child_ids = page.child_ids[split_at:]
    right.high_keys = page.high_keys[split_at:]
    right.sm_bit = True
    ctx.buffer.fix_new(right)  # noqa: RPR001 - unfixed below once formatted and logged
    affected.append(right_id)
    record = update_record(
        txn.txn_id, RM_BTREE, "page_format", right_id, {"page": right.to_payload()}
    )
    lsn = ctx.txns.log_for(txn, record)
    right.page_lsn = lsn
    ctx.buffer.mark_dirty(right_id, lsn)
    ctx.buffer.unfix(right_id)

    def shrink() -> None:
        del page.child_ids[split_at:]
        del page.high_keys[split_at:]
        page.high_keys[-1] = None
        page.sm_bit = True

    _log_set_page(tree, txn, page, shrink)
    return separator, right_id


def _propagate_split(
    tree: BTree,
    txn: "Transaction",
    left_id: int,
    right_id: int,
    separator: IndexKey,
    level: int,
    affected: list[int],
) -> None:
    """Insert the separator entry into the parent level, splitting
    upward as needed (bottom-up, lower latches already released)."""
    ctx = tree.ctx
    while True:
        parent = _descend_to_level(tree, separator, level)
        if left_id not in parent.child_ids:
            # The parent itself split since we looked (by us, one loop
            # iteration ago): the entry belongs in the right sibling.
            tree.unlatch_unfix(parent)
            raise IndexError_(
                f"propagation lost child {left_id} at level {level}"
            )
        if parent.has_room_for_child(separator, ctx.config.page_size):
            affected.append(parent.page_id)

            def link() -> None:
                parent.insert_split_entry(left_id, right_id, separator)
                parent.sm_bit = True

            _log_set_page(tree, txn, parent, link)
            tree.unlatch_unfix(parent)
            ctx.failpoints.hit("smo.split.after_propagation")
            return
        # Parent is full: split it first — a nonleaf-level SMO, so the
        # §5 lock variant upgrades IX→X.  No lock request may be made
        # while holding a latch (§4): release the parent latch first,
        # upgrade, then re-descend under full exclusion.  The upgrade
        # may raise DeadlockError (two concurrent upgraders); the
        # caller's rollback then undoes the partial SMO page-oriented.
        is_root = parent.page_id == tree.root_page_id
        tree.unlatch_unfix(parent)
        tree.smo_upgrade_for_nonleaf(txn)
        parent = _descend_to_level(tree, separator, level)
        if parent.has_room_for_child(separator, ctx.config.page_size):
            tree.unlatch_unfix(parent)
            continue  # someone made room meanwhile; retry the insert
        is_root = parent.page_id == tree.root_page_id
        if is_root:
            tree.unlatch_unfix(parent)
            _grow_root(tree, txn)
            continue
        up_separator, up_right = _split_nonleaf_level(tree, txn, parent, affected)
        parent_id = parent.page_id
        tree.unlatch_unfix(parent)
        _propagate_split(
            tree, txn, parent_id, up_right, up_separator, level + 1, affected
        )
        # Loop: re-descend, the target parent now has room (or splits
        # again in the pathological huge-separator case).


def _descend_to_level(tree: BTree, key: IndexKey, level: int) -> IndexPage:
    """Latch-coupled descent stopping at ``level``; returns that page
    X-latched and fixed.  Only used under the SMO barrier."""
    node = tree.fix_page(tree.root_page_id)
    mode = "X" if node.level == level else "S"
    tree.latch(node, mode)
    while node.level != level:
        if node.level < level:
            tree.unlatch_unfix(node)
            raise IndexError_(f"no level {level} on the path to {key!r}")
        child_id = node.child_for(key)
        child = tree.fix_page(child_id)
        tree.latch(child, "X" if child.level == level else "S")
        tree.unlatch_unfix(node)
        node = child
    return node


# ---------------------------------------------------------------------------
# Page-deletion path (delete-triggered, Figures 8 and 10)
# ---------------------------------------------------------------------------


def delete_with_page_delete(
    tree: BTree,
    txn: "Transaction",
    key: IndexKey,
    clr_for: LogRecord | None,
) -> None:
    """Figure 8, page-delete case: under the SMO barrier, delete the key
    (logged *outside* the NTA so it stays undoable — Figure 10), then
    delete the emptied page as a nested top action."""
    ctx = tree.ctx
    tree.smo_begin(txn)
    # Page deletion touches neighbour chains and the parent; under the
    # §5 lock variant we run it fully exclusive (upgrade IX→X before
    # any latch is held).  Concurrent leaf *splits* remain the case the
    # lock variant parallelizes.
    tree.smo_upgrade_for_nonleaf(txn)
    try:
        descent = tree.traverse(key, for_update=True, txn=txn)
        leaf = descent.leaf
        descent.unlatch_parent(tree)
        pos, found = leaf.find_key(key)
        if not found:
            tree.unlatch_unfix(leaf)
            raise KeyNotFoundError(f"key {key!r} not in index {tree.name!r}")
        leaf.sm_bit = False  # barrier held ⇒ POSC
        leaf.delete_bit = False
        # The key delete itself (holding the barrier is a POSC, so no
        # Delete_Bit is needed).
        payload = {"index_id": tree.index_id, "key": key, "set_delete_bit": False}
        if clr_for is None:
            record = update_record(
                txn.txn_id, RM_BTREE, "delete_key", leaf.page_id, payload
            )
        else:
            record = clr_record(
                txn.txn_id,
                RM_BTREE,
                "delete_key_c",
                leaf.page_id,
                payload,
                undo_next_lsn=clr_for.prev_lsn,
            )
        lsn = ctx.txns.log_for(txn, record)
        leaf.remove_key(key)
        leaf.page_lsn = lsn
        ctx.buffer.mark_dirty(leaf.page_id, lsn)
        ctx.stats.incr("btree.keys_deleted")
        if leaf.keys or leaf.page_id == tree.root_page_id:
            # Someone refilled the page before we got the barrier (or
            # it is the root, which may stay empty): plain delete.
            tree.unlatch_unfix(leaf)
            return
        ctx.failpoints.hit("smo.pagedel.after_key_delete")
        ctx.txns.begin_nta(txn)
        try:
            _perform_page_delete(tree, txn, leaf, route_key=key)
            ctx.failpoints.hit("smo.pagedel.before_dummy_clr")
            ctx.txns.end_nta(txn)
        except BaseException:
            ctx.txns.abandon_nta(txn)
            raise
        ctx.stats.incr("btree.page_deletes")
    finally:
        tree.smo_end(txn)


def _perform_page_delete(
    tree: BTree, txn: "Transaction", leaf: IndexPage, route_key: IndexKey
) -> None:
    """Delete one empty, X-latched, non-root leaf (consumes the latch):
    mark it, unchain it, remove it from its parent (recursing upward if
    the parent empties), then free it."""
    ctx = tree.ctx
    leaf_id = leaf.page_id
    prev_id, next_id = leaf.prev_leaf, leaf.next_leaf

    def mark() -> None:
        leaf.sm_bit = True

    _log_set_page(tree, txn, leaf, mark)
    tree.unlatch_unfix(leaf)
    ctx.failpoints.hit("smo.pagedel.after_mark")

    if prev_id:
        # The recorded predecessor may be stale if a split slid a new
        # page in between before we got the barrier; walk right to the
        # true predecessor (single latch at a time).
        pred_id = prev_id
        neighbour = None
        while pred_id:
            candidate = tree.fix_and_latch(pred_id, "X")
            if candidate.index_id == tree.index_id and candidate.next_leaf == leaf_id:
                neighbour = candidate
                break
            pred_id = candidate.next_leaf if candidate.index_id == tree.index_id else 0
            tree.unlatch_unfix(candidate)
        if neighbour is not None:

            def forward() -> None:
                neighbour.next_leaf = next_id

            _log_apply(
                tree,
                txn,
                neighbour,
                "chain_next",
                {"before": leaf_id, "after": next_id},
                forward,
            )
            prev_id = neighbour.page_id
            tree.unlatch_unfix(neighbour)
    if next_id:
        neighbour = tree.fix_and_latch(next_id, "X")

        def backward() -> None:
            neighbour.prev_leaf = prev_id

        _log_apply(
            tree,
            txn,
            neighbour,
            "chain_prev",
            {"before": leaf_id, "after": prev_id},
            backward,
        )
        tree.unlatch_unfix(neighbour)
    ctx.failpoints.hit("smo.pagedel.after_unchain")

    _remove_from_parent(tree, txn, leaf_id, level=1, route_key=route_key)

    page = tree.fix_and_latch(leaf_id, "X")

    def free() -> None:
        page.load_payload(freed_payload(leaf_id))

    _log_set_page(tree, txn, page, free)
    tree.unlatch_unfix(page)


def _remove_from_parent(
    tree: BTree, txn: "Transaction", child_id: int, level: int, route_key: IndexKey
) -> None:
    """Remove the entry for a deleted child at ``level``, cascading
    upward when the parent empties, collapsing the root when it is left
    with a single child."""
    ctx = tree.ctx
    parent = _descend_to_level(tree, route_key, level)

    def unlink() -> None:
        parent.remove_child(child_id)
        parent.sm_bit = True

    _log_set_page(tree, txn, parent, unlink)
    parent_id = parent.page_id
    is_root = parent_id == tree.root_page_id
    empty = parent.is_empty()
    single_child_root = is_root and len(parent.child_ids) == 1
    tree.unlatch_unfix(parent)

    if empty and not is_root:
        tree.smo_upgrade_for_nonleaf(txn)
        _remove_from_parent(tree, txn, parent_id, level + 1, route_key)
        page = tree.fix_and_latch(parent_id, "X")

        def free() -> None:
            page.load_payload(freed_payload(parent_id))

        _log_set_page(tree, txn, page, free)
        tree.unlatch_unfix(page)
    elif single_child_root:
        tree.smo_upgrade_for_nonleaf(txn)
        _shrink_root(tree, txn)


def _shrink_root(tree: BTree, txn: "Transaction") -> None:
    """Collapse a one-child root: the root absorbs its only child's
    contents (height decreases); the child is freed.  Loops in case the
    absorbed child is itself a one-child nonleaf."""
    ctx = tree.ctx
    while True:
        root = tree.fix_and_latch(tree.root_page_id, "X")
        if root.is_leaf or len(root.child_ids) != 1:
            tree.unlatch_unfix(root)
            return
        child_id = root.child_ids[0]
        child = tree.fix_and_latch(child_id, "X")

        def absorb() -> None:
            payload = child.to_payload()
            payload["sm_bit"] = True
            payload["delete_bit"] = False
            root.load_payload(payload)

        _log_set_page(tree, txn, root, absorb)

        def free() -> None:
            child.load_payload(freed_payload(child_id))

        _log_set_page(tree, txn, child, free)
        tree.unlatch_unfix(child)
        tree.unlatch_unfix(root)
        ctx.stats.incr("btree.root_shrinks")


# ---------------------------------------------------------------------------
# Bit reset (optional, unlogged — see node.py docstring)
# ---------------------------------------------------------------------------


def _maybe_reset_bits(tree: BTree, page_ids: list[int]) -> None:
    if not tree.ctx.config.reset_sm_bits_after_smo:
        return
    for page_id in dict.fromkeys(page_ids):
        try:
            page = tree.fix_and_latch(page_id, "X")
        except Exception:  # noqa: BLE001,RPR005 - page may already be freed
            continue
        if isinstance(page, IndexPage) and page.index_id == tree.index_id:
            page.sm_bit = False
        tree.unlatch_unfix(page)
