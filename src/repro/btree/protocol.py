"""Locking protocols: what to lock, in which mode, for which duration.

Figure 2 of the paper is exactly this table for ARIES/IM; the baseline
protocols (ARIES/KVL from [Moha90a], and a System R-style protocol as
characterized in §1/§5) are expressed through the same interface so the
index action routines are protocol-agnostic and the lock-count
experiments (E1, E7) compare like with like.

The key distinction (§2.1):

- **data-only locking** (ARIES/IM's headline): the lock of a key *is*
  the lock on the corresponding record (or its data page, at page
  granularity).  The index manager locks the record during fetches;
  the record manager's own X lock covers inserts/deletes, so the index
  takes *no* current-key lock for those.
- **index-specific locking**: explicit locks on keys in the index —
  ARIES/IM's variant locks individual (value, RID) keys; ARIES/KVL and
  System R lock key *values*, which in a nonunique index makes all
  duplicates share one lock.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.rid import IndexKey
from repro.locks.modes import (
    LockDuration,
    LockMode,
    eof_lock_name,
    key_value_lock_name,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.btree.tree import BTree


@dataclass(frozen=True)
class LockSpec:
    """One lock to request."""

    name: tuple
    mode: LockMode
    duration: LockDuration


def _individual_key_name(tree: "BTree", key: IndexKey) -> tuple:
    """Lock name for one individual key (value, RID) — the unit
    ARIES/IM's index-specific variant locks (finer than KVL's values)."""
    return ("key", tree.index_id, key.value, key.rid)


class LockingProtocol(abc.ABC):
    """Strategy interface consulted by the index action routines."""

    name: str = ""
    #: Must the record manager lock the record when a fetch goes on to
    #: read the data page?  False only for data-only locking, where the
    #: index's current-key lock *is* the record lock.
    record_fetch_needs_lock: bool = True
    #: Does the index manager take current-key locks on insert/delete?
    #: False for data-only locking (the record manager's X lock covers).
    index_locks_current_key: bool = True

    def key_lock_name(self, tree: "BTree", key: IndexKey) -> tuple:
        """Lock name used for ``key`` (protocol-specific granularity)."""
        raise NotImplementedError

    def eof_name(self, tree: "BTree") -> tuple:
        """The special lock name for the end-of-file condition (§2.2)."""
        return eof_lock_name(tree.index_id)

    def _name_or_eof(self, tree: "BTree", key: IndexKey | None) -> tuple:
        return self.key_lock_name(tree, key) if key is not None else self.eof_name(tree)

    # -- the Figure 2 table, one row per operation ----------------------------

    def fetch_lock(
        self, tree: "BTree", found: IndexKey | None, isolation: str = "rr"
    ) -> LockSpec:
        """Current-key (or EOF) lock for Fetch / Fetch Next.

        Repeatable read ("rr", degree 3 — the paper's default) holds it
        to commit; cursor stability ("cs", degree 2) takes it manual so
        the caller can release it once the cursor moves off the record.
        """
        duration = LockDuration.COMMIT if isolation == "rr" else LockDuration.MANUAL
        return LockSpec(self._name_or_eof(tree, found), LockMode.S, duration)

    @abc.abstractmethod
    def insert_locks(
        self,
        tree: "BTree",
        key: IndexKey,
        next_key: IndexKey | None,
        value_exists: bool,
    ) -> list[LockSpec]:
        """Locks for inserting ``key`` whose next key is ``next_key``.

        ``value_exists``: other keys with the same value are present
        (only possible in a nonunique index) — KVL's lock requirements
        depend on it.
        """

    @abc.abstractmethod
    def delete_locks(
        self,
        tree: "BTree",
        key: IndexKey,
        next_key: IndexKey | None,
        last_instance: bool,
    ) -> list[LockSpec]:
        """Locks for deleting ``key``; ``last_instance`` is True when no
        other key with the same value remains."""

    def unique_check_lock(self, tree: "BTree", found: IndexKey) -> LockSpec:
        """Commit-duration S lock making a unique-violation repeatable
        (§2.4)."""
        return LockSpec(
            self.key_lock_name(tree, found), LockMode.S, LockDuration.COMMIT
        )


class DataOnlyLocking(LockingProtocol):
    """ARIES/IM data-only locking (Figure 2, default)."""

    name = "aries_im_data_only"
    record_fetch_needs_lock = False
    index_locks_current_key = False

    def key_lock_name(self, tree: "BTree", key: IndexKey) -> tuple:
        return tree.ctx.heap_lock_name(tree.table_id, key.rid)

    def insert_locks(self, tree, key, next_key, value_exists):
        # Next key: X instant.  Current key: none — the record manager
        # already holds the commit-duration X record lock.
        return [
            LockSpec(self._name_or_eof(tree, next_key), LockMode.X, LockDuration.INSTANT)
        ]

    def delete_locks(self, tree, key, next_key, last_instance):
        # Next key: X commit (the deleter's trace, §2.6).  Current: none.
        return [
            LockSpec(self._name_or_eof(tree, next_key), LockMode.X, LockDuration.COMMIT)
        ]


class IndexSpecificLocking(LockingProtocol):
    """ARIES/IM's index-specific variant (Figure 2, right column):
    explicit locks on individual keys for slightly more concurrency at
    extra locking cost (§2.1)."""

    name = "aries_im_index_specific"
    record_fetch_needs_lock = True
    index_locks_current_key = True

    def key_lock_name(self, tree: "BTree", key: IndexKey) -> tuple:
        return _individual_key_name(tree, key)

    def insert_locks(self, tree, key, next_key, value_exists):
        return [
            LockSpec(self._name_or_eof(tree, next_key), LockMode.X, LockDuration.INSTANT),
            LockSpec(self.key_lock_name(tree, key), LockMode.X, LockDuration.COMMIT),
        ]

    def delete_locks(self, tree, key, next_key, last_instance):
        return [
            LockSpec(self._name_or_eof(tree, next_key), LockMode.X, LockDuration.COMMIT),
            LockSpec(self.key_lock_name(tree, key), LockMode.X, LockDuration.INSTANT),
        ]


class KeyValueLocking(LockingProtocol):
    """ARIES/KVL [Moha90a]: locks on key *values*.

    All duplicates of a value share one lock name — the coarseness the
    paper criticizes for nonunique indexes (§1).  Lock table (from the
    ARIES/KVL paper as summarized here):

    - Fetch: S commit on the found value (or EOF).
    - Insert: IX instant on the next value, plus IX commit on the
      inserted value when it already exists (nonunique duplicate), X
      commit when it is new.
    - Delete: X commit on the deleted value; additionally X commit on
      the next value when the last instance of the value is removed.
    """

    name = "aries_kvl"
    record_fetch_needs_lock = True
    index_locks_current_key = True

    def key_lock_name(self, tree: "BTree", key: IndexKey) -> tuple:
        return key_value_lock_name(tree.index_id, key.value)

    def insert_locks(self, tree, key, next_key, value_exists):
        if value_exists:
            return [
                LockSpec(self.key_lock_name(tree, key), LockMode.IX, LockDuration.COMMIT)
            ]
        return [
            LockSpec(self._name_or_eof(tree, next_key), LockMode.IX, LockDuration.INSTANT),
            LockSpec(self.key_lock_name(tree, key), LockMode.X, LockDuration.COMMIT),
        ]

    def delete_locks(self, tree, key, next_key, last_instance):
        locks = [
            LockSpec(self.key_lock_name(tree, key), LockMode.X, LockDuration.COMMIT)
        ]
        if last_instance:
            locks.append(
                LockSpec(self._name_or_eof(tree, next_key), LockMode.X, LockDuration.COMMIT)
            )
        return locks


class SystemRStyleLocking(LockingProtocol):
    """System R-style index locking, as characterized in §1/§5: key
    value locks, all of commit duration, on both current and next keys
    for writes — "the number of locks acquired for even single record
    operations ... is very high".  An approximation (System R source is
    unavailable); labeled as such wherever reported."""

    name = "system_r_style"
    record_fetch_needs_lock = True
    index_locks_current_key = True

    def key_lock_name(self, tree: "BTree", key: IndexKey) -> tuple:
        return key_value_lock_name(tree.index_id, key.value)

    def insert_locks(self, tree, key, next_key, value_exists):
        return [
            LockSpec(self._name_or_eof(tree, next_key), LockMode.X, LockDuration.COMMIT),
            LockSpec(self.key_lock_name(tree, key), LockMode.X, LockDuration.COMMIT),
        ]

    def delete_locks(self, tree, key, next_key, last_instance):
        return [
            LockSpec(self._name_or_eof(tree, next_key), LockMode.X, LockDuration.COMMIT),
            LockSpec(self.key_lock_name(tree, key), LockMode.X, LockDuration.COMMIT),
        ]


PROTOCOLS: dict[str, type[LockingProtocol]] = {
    DataOnlyLocking.name: DataOnlyLocking,
    IndexSpecificLocking.name: IndexSpecificLocking,
    KeyValueLocking.name: KeyValueLocking,
    SystemRStyleLocking.name: SystemRStyleLocking,
}


def make_protocol(name: str) -> LockingProtocol:
    """Instantiate a protocol by name (also accepts the config aliases
    ``data_only`` and ``index_specific``)."""
    aliases = {
        "data_only": DataOnlyLocking.name,
        "index_specific": IndexSpecificLocking.name,
        "kvl": KeyValueLocking.name,
        "system_r": SystemRStyleLocking.name,
    }
    resolved = aliases.get(name, name)
    cls = PROTOCOLS.get(resolved)
    if cls is None:
        raise KeyError(f"unknown locking protocol {name!r}")
    return cls()
