"""Transaction manager: begin/commit/rollback, savepoints, NTAs.

Rollback walks the transaction's backward chain writing CLRs (via the
resource managers), honouring the two chain-surgery rules of ARIES
(§1.2):

- undoing a non-CLR writes a CLR whose ``undo_next_lsn`` is the undone
  record's ``prev_lsn``;
- encountering a CLR (including the dummy CLR that seals a nested top
  action) *jumps* to its ``undo_next_lsn`` — which is how a completed
  SMO is skipped over during rollback (Figures 9 and 10).

Commit forces the log (the only synchronous log I/O in the normal
path); data pages are never forced (no-force) and may have been stolen.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.common.errors import (
    CommitNotDurableError,
    LogHaltedError,
    TransactionNotActiveError,
)
from repro.common.stats import StatsRegistry
from repro.locks.modes import LockDuration
from repro.txn.rm import ResourceManagerRegistry
from repro.txn.transaction import Transaction, TxnStatus
from repro.wal.log import LogManager
from repro.wal.records import (
    NULL_LSN,
    LogRecord,
    RecordKind,
    dummy_clr,
    prepare_record,
)
from repro.wal.serialization import encode_lock_table

#: Phase-1 vote values (two-phase commit).
VOTE_YES = "yes"
VOTE_READ_ONLY = "read-only"

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database
    from repro.locks.manager import LockManager


class PendingCommit:
    """A commit whose COMMIT record is appended but whose durability
    force and phase 2 (lock release, END record, acknowledgement) are
    deferred, so a server batch can pay one flush for many commits.

    Locks stay held until :meth:`finish` — the strict read/ack contract
    is untouched; only the flush is coalesced.  ``finish`` is
    idempotent and thread-safe: the batch owner, or any lock waiter
    blocked on this transaction (through the lock manager's
    pending-commit resolver), may complete it; every caller observes
    the one recorded outcome.
    """

    __slots__ = ("txn", "commit_lsn", "last_lsn", "error", "_mgr", "_lock", "_finished")

    def __init__(
        self, mgr: "TransactionManager", txn: Transaction, commit_lsn: int
    ) -> None:
        self._mgr = mgr
        self.txn = txn
        self.commit_lsn = commit_lsn
        self.last_lsn = txn.last_lsn
        self.error: Exception | None = None
        self._lock = threading.Lock()
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def finish(self) -> Exception | None:
        """Force the log through this COMMIT record and run phase 2.

        Returns the failure (``CommitNotDurableError`` when a crash won
        the race) or None; concurrent callers block until the first
        finisher's outcome is recorded, then return it.
        """
        with self._lock:
            if not self._finished:
                try:
                    self._mgr._log.force_for_commit(self.last_lsn)
                    self._mgr._commit_finish(self)
                except Exception as exc:  # noqa: BLE001,RPR005 - outcome stored, re-raised by the batch owner
                    self.error = exc
                finally:
                    self._finished = True
                    self._mgr._unregister_pending(self.txn.txn_id)
        return self.error


class TransactionManager:
    """Owns the transaction table and drives commit/rollback."""

    def __init__(
        self,
        log: LogManager,
        locks: "LockManager",
        registry: ResourceManagerRegistry,
        stats: StatsRegistry | None = None,
    ) -> None:
        self._log = log
        self._locks = locks
        self._registry = registry
        self._stats = stats or StatsRegistry(enabled=False)
        self._mutex = threading.Lock()
        self._next_txn_id = 1
        self._halted = False
        self._table: dict[int, Transaction] = {}
        #: Deferred commits awaiting their batched force, by txn id.
        self._pending_commits: dict[int, PendingCommit] = {}
        self._pending_lock = threading.Lock()
        # A waiter blocked on a pending commit's locks completes that
        # commit itself instead of waiting out the batch (or, worse, a
        # lock timeout).  Installed at construction so a post-restart
        # manager owns the hook of the (surviving) lock manager.
        locks.pending_commit_resolver = self.resolve_pending_commits
        #: Optional synchronous-replication gate, called with the commit
        #: record's LSN after the transaction is locally durable and
        #: fully ended.  Raising withholds the *acknowledgement* only —
        #: the transaction is committed either way (in-doubt surfaced
        #: to the caller, never silent).
        self.commit_gate = None
        #: MVCC hook, called with ``(txn_id, commit_lsn)`` after the
        #: commit record is durable and *before* locks are released —
        #: a commit must have its snapshot timestamp before any reader
        #: can be exposed to its effects.
        self.on_commit = None

    def halt(self) -> None:
        """Retire this manager: its database crashed and a successor
        owns the (resumed) log.  A thread still inside ``commit`` or
        ``rollback`` with a pre-crash transaction must fail fast rather
        than append stale records — the log itself is halted only until
        ``restart`` resumes it, which can happen *while* such a zombie
        is parked between its COMMIT append and its END append."""
        self._halted = True

    def _check_owned(self, txn: Transaction) -> None:
        """Reject transaction handles this manager never issued.

        A crash replaces the manager wholesale; a thread that began a
        transaction before the crash and reaches ``db.commit`` after
        ``restart`` would otherwise log COMMIT/END records for a txn id
        the new incarnation may have re-ended or reused."""
        with self._mutex:
            if self._table.get(txn.txn_id) is not txn:
                raise TransactionNotActiveError(
                    f"txn {txn.txn_id} is not owned by this transaction "
                    "manager (stale handle from before a crash?)"
                )

    # -- transaction table ---------------------------------------------------

    def begin(self) -> Transaction:
        with self._mutex:
            txn = Transaction(txn_id=self._next_txn_id)
            self._next_txn_id += 1
            self._table[txn.txn_id] = txn
        self._stats.incr("txn.begun")
        return txn

    def get(self, txn_id: int) -> Transaction | None:
        with self._mutex:
            return self._table.get(txn_id)

    def active_transactions(self) -> list[Transaction]:
        with self._mutex:
            return [t for t in self._table.values() if t.is_active]

    def prepared_transactions(self) -> list[Transaction]:
        """The in-doubt branches: PREPAREd, coordinator decision pending."""
        with self._mutex:
            return [t for t in self._table.values() if t.is_prepared]

    def undecided_transactions(self) -> list[Transaction]:
        """Transactions whose log chain must stay readable: the active
        ones (total rollback walks to ``first_lsn``) plus the prepared
        ones (a restart must re-read their PREPARE records)."""
        with self._mutex:
            return [
                t for t in self._table.values() if t.is_active or t.is_prepared
            ]

    def find_prepared(self, gid: str) -> Transaction | None:
        with self._mutex:
            for txn in self._table.values():
                if txn.is_prepared and txn.gid == gid:
                    return txn
        return None

    def table_snapshot(self) -> dict[int, Transaction]:
        with self._mutex:
            return dict(self._table)

    def adopt(self, txn: Transaction) -> None:
        """Install a transaction reconstructed by restart analysis."""
        with self._mutex:
            self._table[txn.txn_id] = txn
            if txn.txn_id >= self._next_txn_id:
                self._next_txn_id = txn.txn_id + 1

    def forget(self, txn_id: int) -> None:
        with self._mutex:
            self._table.pop(txn_id, None)

    def adopt_floor(self, txn_id: int) -> None:
        """Ensure future transaction ids start at or above ``txn_id``
        (no id reuse across a restart)."""
        with self._mutex:
            if txn_id > self._next_txn_id:
                self._next_txn_id = txn_id

    @property
    def next_txn_id(self) -> int:
        """The id the next ``begin`` would hand out (checkpoints record
        it so instant restart can re-establish the no-reuse floor
        without a full log scan)."""
        with self._mutex:
            return self._next_txn_id

    # -- logging helper ---------------------------------------------------------

    def log_for(self, txn: Transaction, record: LogRecord) -> int:
        """Chain ``record`` onto ``txn`` and append it to the log."""
        if self._halted:
            raise LogHaltedError(
                f"transaction manager retired by a crash; txn "
                f"{txn.txn_id} may not log through it"
            )
        if txn.snapshot is not None:
            raise TransactionNotActiveError(
                f"snapshot transaction {txn.txn_id} is read-only and may not log"
            )
        record.txn_id = txn.txn_id
        record.prev_lsn = txn.last_lsn
        lsn = self._log.append(record)
        txn.note_logged(lsn)
        return lsn

    # -- commit --------------------------------------------------------------------

    def commit(self, txn: Transaction) -> None:
        pending = self._commit_start(txn)
        if pending is None:
            return  # read-only: nothing was logged, nothing to force
        # The one synchronous log I/O of the normal path.  Under group
        # commit this parks until a batched flush covers the commit
        # record and may raise CommitNotDurableError if a crash wins the
        # race — in which case the transaction was never acknowledged
        # and restart rolls it back.
        self._log.force_for_commit(pending.last_lsn)
        self._commit_finish(pending)

    def _commit_start(self, txn: Transaction) -> "PendingCommit | None":
        """Phase 1 of commit: validate and append the COMMIT record.

        Read-only transactions complete entirely here and return None:
        they logged nothing, so ARIES needs no COMMIT/END records and
        no force for them — the common autocommit-read shape skips the
        log altogether.  Otherwise the returned handle still holds its
        locks and awaits :meth:`_commit_finish` after a force covering
        ``last_lsn``.
        """
        if not txn.is_active:
            raise TransactionNotActiveError(f"cannot commit {txn!r}")
        self._check_owned(txn)
        if txn.first_lsn == NULL_LSN:
            if self._halted:
                # Preserve the pre-fast-path contract: a commit racing a
                # crash fails loudly even when it changed nothing.
                raise LogHaltedError(
                    f"transaction manager retired by a crash; txn "
                    f"{txn.txn_id} may not commit through it"
                )
            txn.status = TxnStatus.COMMITTED
            released = self._locks.release_all(txn.txn_id)
            self._stats.incr("txn.locks_released_at_commit", released)
            txn.status = TxnStatus.ENDED
            self.forget(txn.txn_id)
            self._stats.incr("txn.committed")
            self._stats.incr("txn.readonly_commits")
            return None
        commit = LogRecord(kind=RecordKind.COMMIT, txn_id=txn.txn_id)
        commit_lsn = self.log_for(txn, commit)
        return PendingCommit(self, txn, commit_lsn)

    def _commit_finish(self, pending: "PendingCommit") -> None:
        """Phase 2 of commit, after a force covers the COMMIT record."""
        txn = pending.txn
        commit_lsn = pending.commit_lsn
        if self._halted:
            # A crash landed while this commit was in flight and the
            # force may have run against the *resumed* log (the record
            # itself died in the volatile tail).  Whether the COMMIT
            # made it is unknowable from here — never acknowledge;
            # restart decides, as for any in-doubt commit.
            raise CommitNotDurableError(
                f"txn {txn.txn_id}: crash raced the commit; outcome "
                "decided by restart"
            )
        txn.status = TxnStatus.COMMITTED
        # Timestamp the commit (durable) before its locks drop: a
        # snapshot begun after the release must already see it.
        on_commit = self.on_commit
        if on_commit is not None:
            on_commit(txn.txn_id, commit_lsn)
        released = self._locks.release_all(txn.txn_id)
        self._stats.incr("txn.locks_released_at_commit", released)
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id, undoable=False)
        try:
            self.log_for(txn, end)
        except LogHaltedError:
            # The commit record is already durable — the transaction IS
            # committed and the caller must be acknowledged.  The END
            # record (a crash landed right here) dies with the volatile
            # tail; restart handles a committed transaction without one.
            pass
        txn.status = TxnStatus.ENDED
        self.forget(txn.txn_id)
        self._stats.incr("txn.committed")
        # Synchronous replication holds the *acknowledgement* (not the
        # commit — that is already durable and irreversible) until a
        # standby confirms durable receipt.  Read-only transactions
        # changed nothing a failover could lose, so they skip the gate
        # (they never reach here — see _commit_start).
        gate = self.commit_gate
        if gate is not None:
            gate(commit_lsn)

    # -- deferred (batched) commits ------------------------------------------
    #
    # Server-side batch execution coalesces the commits of one request
    # batch into a single log force: each commit appends its COMMIT
    # record immediately (locks held, nothing acknowledged) and parks as
    # a PendingCommit; the batch owner finishes them all under one
    # force.  A transaction blocked on a pending commit's locks need not
    # wait for the batch to end — the lock manager's pending-commit
    # resolver lets the *waiter* complete the pending commit (force +
    # phase 2), which is exactly flush pipelining: the log write was
    # already issued, the waiter just pays for (part of) the flush.

    def commit_deferred(self, txn: Transaction) -> "PendingCommit | None":
        """Append ``txn``'s COMMIT record but defer its durability
        force and phase 2.  Returns None when the commit completed
        outright (read-only fast path); otherwise the handle *must*
        eventually be finished (see :meth:`finish_deferred`)."""
        pending = self._commit_start(txn)
        if pending is None:
            return None
        with self._pending_lock:
            self._pending_commits[txn.txn_id] = pending
        self._stats.incr("txn.deferred_commits")
        return pending

    def finish_deferred(self, pendings: "list[PendingCommit]") -> None:
        """Complete a batch of deferred commits under one coalesced
        force covering the newest COMMIT record.  Individual outcomes
        (including failures) land on each handle's ``error``."""
        live = [p for p in pendings if p is not None and not p.finished]
        if not live:
            return
        try:
            self._log.force_for_commit(max(p.last_lsn for p in live))
        except CommitNotDurableError:  # noqa: RPR005 - each finish() re-forces and records its own outcome per handle
            pass
        for pending in live:
            pending.finish()

    def resolve_pending_commits(self, txn_ids: "list[int]") -> bool:
        """Lock-manager hook: complete any pending deferred commits
        among ``txn_ids`` (they hold locks the caller is blocked on).
        Returns True if any commit was completed."""
        completed = False
        for txn_id in txn_ids:
            with self._pending_lock:
                pending = self._pending_commits.get(txn_id)
            if pending is not None:
                pending.finish()
                completed = True
        return completed

    def _unregister_pending(self, txn_id: int) -> None:
        with self._pending_lock:
            self._pending_commits.pop(txn_id, None)

    # -- two-phase commit (presumed abort) --------------------------------------

    def prepare(self, txn: Transaction, gid: str) -> str:
        """Phase 1: vote on global transaction ``gid``.

        A read-only branch (no log records) votes ``read-only`` and
        vanishes immediately — presumed abort needs nothing from it and
        the coordinator drops it from phase 2.  Otherwise the branch
        forces a PREPARE record carrying its COMMIT-duration lock set
        and parks as PREPARED: locks held, neither loser nor winner,
        until :meth:`commit_prepared` or :meth:`rollback_prepared`.
        """
        if not txn.is_active:
            raise TransactionNotActiveError(f"cannot prepare {txn!r}")
        self._check_owned(txn)
        if txn.first_lsn == NULL_LSN:
            released = self._locks.release_all(txn.txn_id)
            self._stats.incr("txn.locks_released_at_commit", released)
            txn.status = TxnStatus.ENDED
            self.forget(txn.txn_id)
            self._stats.incr("txn.votes_read_only")
            return VOTE_READ_ONLY
        locks = encode_lock_table(
            [
                (name, mode.value)
                for name, mode, duration in self._locks.locks_of(txn.txn_id)
                if duration is LockDuration.COMMIT
            ]
        )
        record = prepare_record(txn.txn_id, gid, locks)
        prepare_lsn = self.log_for(txn, record)
        # Forced like a commit: the vote must survive a crash, else the
        # coordinator could commit a global transaction whose branch is
        # rolled back as a restart loser.
        self._log.force_for_commit(txn.last_lsn)
        if self._halted:
            # Same race as commit: the force may have run against the
            # resumed log.  Vote no; a durable PREPARE is resolved by
            # presumed-abort recovery.
            raise CommitNotDurableError(
                f"txn {txn.txn_id}: crash raced the prepare; vote withheld"
            )
        txn.status = TxnStatus.PREPARED
        txn.gid = gid
        txn.prepare_lsn = prepare_lsn
        self._stats.incr("txn.prepared")
        return VOTE_YES

    def commit_prepared(self, txn: Transaction) -> None:
        """Phase 2, decision = commit, for a PREPARED branch."""
        if not txn.is_prepared:
            raise TransactionNotActiveError(f"cannot commit-prepared {txn!r}")
        commit = LogRecord(
            kind=RecordKind.COMMIT,
            txn_id=txn.txn_id,
            payload={"gid": txn.gid},
            undoable=False,
        )
        commit_lsn = self.log_for(txn, commit)
        self._log.force_for_commit(txn.last_lsn)
        txn.status = TxnStatus.COMMITTED
        on_commit = self.on_commit
        if on_commit is not None:
            on_commit(txn.txn_id, commit_lsn)
        released = self._locks.release_all(txn.txn_id)
        self._stats.incr("txn.locks_released_at_commit", released)
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id, undoable=False)
        try:
            self.log_for(txn, end)
        except LogHaltedError:
            pass  # commit record durable: restart ENDs it (same as commit)
        txn.status = TxnStatus.ENDED
        self.forget(txn.txn_id)
        self._stats.incr("txn.committed")
        self._stats.incr("txn.prepared_committed")

    def rollback_prepared(self, ctx: "Database", txn: Transaction) -> None:
        """Phase 2, decision = abort, for a PREPARED branch."""
        if not txn.is_prepared:
            raise TransactionNotActiveError(f"cannot rollback-prepared {txn!r}")
        rollback = LogRecord(
            kind=RecordKind.ROLLBACK, txn_id=txn.txn_id, undoable=False
        )
        self.log_for(txn, rollback)
        txn.status = TxnStatus.ROLLING_BACK
        txn.in_rollback = True
        try:
            self.undo_to(ctx, txn, NULL_LSN)
        finally:
            txn.in_rollback = False
        txn.status = TxnStatus.ABORTED
        released = self._locks.release_all(txn.txn_id)
        self._stats.incr("txn.locks_released_at_rollback", released)
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id, undoable=False)
        self.log_for(txn, end)
        txn.status = TxnStatus.ENDED
        self.forget(txn.txn_id)
        self._stats.incr("txn.rolled_back")
        self._stats.incr("txn.prepared_aborted")

    # -- rollback --------------------------------------------------------------------

    def rollback(self, ctx: "Database", txn: Transaction) -> None:
        """Total rollback."""
        if not txn.is_active:
            raise TransactionNotActiveError(f"cannot rollback {txn!r}")
        self._check_owned(txn)
        rollback = LogRecord(
            kind=RecordKind.ROLLBACK, txn_id=txn.txn_id, undoable=False
        )
        self.log_for(txn, rollback)
        txn.status = TxnStatus.ROLLING_BACK
        txn.in_rollback = True
        try:
            self.undo_to(ctx, txn, NULL_LSN)
        finally:
            txn.in_rollback = False
        txn.status = TxnStatus.ABORTED
        released = self._locks.release_all(txn.txn_id)
        self._stats.incr("txn.locks_released_at_rollback", released)
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id, undoable=False)
        self.log_for(txn, end)
        txn.status = TxnStatus.ENDED
        self.forget(txn.txn_id)
        self._stats.incr("txn.rolled_back")

    def savepoint(self, txn: Transaction, name: str) -> int:
        """Establish a savepoint at the transaction's current position."""
        txn.savepoints[name] = txn.last_lsn
        return txn.last_lsn

    def rollback_to_savepoint(self, ctx: "Database", txn: Transaction, name: str) -> None:
        """Partial rollback.  Locks acquired since the savepoint are
        retained (per ARIES, releasing them would jeopardize repeatable
        read for data the transaction may have read)."""
        if not txn.is_active:
            raise TransactionNotActiveError(f"cannot partially rollback {txn!r}")
        save_lsn = txn.savepoints[name]
        txn.in_rollback = True
        try:
            self.undo_to(ctx, txn, save_lsn)
        finally:
            txn.in_rollback = False
        self._stats.incr("txn.partial_rollbacks")

    def undo_to(self, ctx: "Database", txn: Transaction, stop_lsn: int) -> None:
        """Walk the undo chain back to (exclusive) ``stop_lsn``."""
        lsn = txn.undo_next_lsn
        while lsn > stop_lsn:
            record = self._log.read(lsn)
            if record.is_clr:
                lsn = record.undo_next_lsn or NULL_LSN
            elif record.kind is RecordKind.UPDATE and record.undoable:
                self._registry.undo(ctx, txn, record)
                self._stats.incr("txn.records_undone")
                lsn = record.prev_lsn
            else:
                lsn = record.prev_lsn
            txn.undo_next_lsn = lsn

    # -- nested top actions ------------------------------------------------------------

    def begin_nta(self, txn: Transaction) -> None:
        """Remember the LSN the eventual dummy CLR must point back to
        (Figure 8: 'Remember LSN of last log record of transaction')."""
        txn.nta_stack.append(txn.last_lsn)

    def end_nta(self, txn: Transaction) -> int:
        """Seal the innermost nested top action with a dummy CLR."""
        start_lsn = txn.nta_stack.pop()
        record = dummy_clr(txn.txn_id, undo_next_lsn=start_lsn)
        lsn = self.log_for(txn, record)
        self._stats.incr("txn.nta_completed")
        return lsn

    def abandon_nta(self, txn: Transaction) -> None:
        """Drop the innermost NTA marker without sealing it (the NTA was
        interrupted; its records remain undoable, which is the desired
        outcome per §1.2)."""
        txn.nta_stack.pop()
