"""Transaction manager: begin/commit/rollback, savepoints, NTAs.

Rollback walks the transaction's backward chain writing CLRs (via the
resource managers), honouring the two chain-surgery rules of ARIES
(§1.2):

- undoing a non-CLR writes a CLR whose ``undo_next_lsn`` is the undone
  record's ``prev_lsn``;
- encountering a CLR (including the dummy CLR that seals a nested top
  action) *jumps* to its ``undo_next_lsn`` — which is how a completed
  SMO is skipped over during rollback (Figures 9 and 10).

Commit forces the log (the only synchronous log I/O in the normal
path); data pages are never forced (no-force) and may have been stolen.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.common.errors import (
    CommitNotDurableError,
    LogHaltedError,
    TransactionNotActiveError,
)
from repro.common.stats import StatsRegistry
from repro.locks.modes import LockDuration
from repro.txn.rm import ResourceManagerRegistry
from repro.txn.transaction import Transaction, TxnStatus
from repro.wal.log import LogManager
from repro.wal.records import (
    NULL_LSN,
    LogRecord,
    RecordKind,
    dummy_clr,
    prepare_record,
)
from repro.wal.serialization import encode_lock_table

#: Phase-1 vote values (two-phase commit).
VOTE_YES = "yes"
VOTE_READ_ONLY = "read-only"

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database
    from repro.locks.manager import LockManager


class TransactionManager:
    """Owns the transaction table and drives commit/rollback."""

    def __init__(
        self,
        log: LogManager,
        locks: "LockManager",
        registry: ResourceManagerRegistry,
        stats: StatsRegistry | None = None,
    ) -> None:
        self._log = log
        self._locks = locks
        self._registry = registry
        self._stats = stats or StatsRegistry(enabled=False)
        self._mutex = threading.Lock()
        self._next_txn_id = 1
        self._halted = False
        self._table: dict[int, Transaction] = {}
        #: Optional synchronous-replication gate, called with the commit
        #: record's LSN after the transaction is locally durable and
        #: fully ended.  Raising withholds the *acknowledgement* only —
        #: the transaction is committed either way (in-doubt surfaced
        #: to the caller, never silent).
        self.commit_gate = None
        #: MVCC hook, called with ``(txn_id, commit_lsn)`` after the
        #: commit record is durable and *before* locks are released —
        #: a commit must have its snapshot timestamp before any reader
        #: can be exposed to its effects.
        self.on_commit = None

    def halt(self) -> None:
        """Retire this manager: its database crashed and a successor
        owns the (resumed) log.  A thread still inside ``commit`` or
        ``rollback`` with a pre-crash transaction must fail fast rather
        than append stale records — the log itself is halted only until
        ``restart`` resumes it, which can happen *while* such a zombie
        is parked between its COMMIT append and its END append."""
        self._halted = True

    def _check_owned(self, txn: Transaction) -> None:
        """Reject transaction handles this manager never issued.

        A crash replaces the manager wholesale; a thread that began a
        transaction before the crash and reaches ``db.commit`` after
        ``restart`` would otherwise log COMMIT/END records for a txn id
        the new incarnation may have re-ended or reused."""
        with self._mutex:
            if self._table.get(txn.txn_id) is not txn:
                raise TransactionNotActiveError(
                    f"txn {txn.txn_id} is not owned by this transaction "
                    "manager (stale handle from before a crash?)"
                )

    # -- transaction table ---------------------------------------------------

    def begin(self) -> Transaction:
        with self._mutex:
            txn = Transaction(txn_id=self._next_txn_id)
            self._next_txn_id += 1
            self._table[txn.txn_id] = txn
        self._stats.incr("txn.begun")
        return txn

    def get(self, txn_id: int) -> Transaction | None:
        with self._mutex:
            return self._table.get(txn_id)

    def active_transactions(self) -> list[Transaction]:
        with self._mutex:
            return [t for t in self._table.values() if t.is_active]

    def prepared_transactions(self) -> list[Transaction]:
        """The in-doubt branches: PREPAREd, coordinator decision pending."""
        with self._mutex:
            return [t for t in self._table.values() if t.is_prepared]

    def undecided_transactions(self) -> list[Transaction]:
        """Transactions whose log chain must stay readable: the active
        ones (total rollback walks to ``first_lsn``) plus the prepared
        ones (a restart must re-read their PREPARE records)."""
        with self._mutex:
            return [
                t for t in self._table.values() if t.is_active or t.is_prepared
            ]

    def find_prepared(self, gid: str) -> Transaction | None:
        with self._mutex:
            for txn in self._table.values():
                if txn.is_prepared and txn.gid == gid:
                    return txn
        return None

    def table_snapshot(self) -> dict[int, Transaction]:
        with self._mutex:
            return dict(self._table)

    def adopt(self, txn: Transaction) -> None:
        """Install a transaction reconstructed by restart analysis."""
        with self._mutex:
            self._table[txn.txn_id] = txn
            if txn.txn_id >= self._next_txn_id:
                self._next_txn_id = txn.txn_id + 1

    def forget(self, txn_id: int) -> None:
        with self._mutex:
            self._table.pop(txn_id, None)

    def adopt_floor(self, txn_id: int) -> None:
        """Ensure future transaction ids start at or above ``txn_id``
        (no id reuse across a restart)."""
        with self._mutex:
            if txn_id > self._next_txn_id:
                self._next_txn_id = txn_id

    @property
    def next_txn_id(self) -> int:
        """The id the next ``begin`` would hand out (checkpoints record
        it so instant restart can re-establish the no-reuse floor
        without a full log scan)."""
        with self._mutex:
            return self._next_txn_id

    # -- logging helper ---------------------------------------------------------

    def log_for(self, txn: Transaction, record: LogRecord) -> int:
        """Chain ``record`` onto ``txn`` and append it to the log."""
        if self._halted:
            raise LogHaltedError(
                f"transaction manager retired by a crash; txn "
                f"{txn.txn_id} may not log through it"
            )
        if txn.snapshot is not None:
            raise TransactionNotActiveError(
                f"snapshot transaction {txn.txn_id} is read-only and may not log"
            )
        record.txn_id = txn.txn_id
        record.prev_lsn = txn.last_lsn
        lsn = self._log.append(record)
        txn.note_logged(lsn)
        return lsn

    # -- commit --------------------------------------------------------------------

    def commit(self, txn: Transaction) -> None:
        if not txn.is_active:
            raise TransactionNotActiveError(f"cannot commit {txn!r}")
        self._check_owned(txn)
        wrote_data = txn.first_lsn != NULL_LSN
        commit = LogRecord(kind=RecordKind.COMMIT, txn_id=txn.txn_id)
        commit_lsn = self.log_for(txn, commit)
        # The one synchronous log I/O of the normal path.  Under group
        # commit this parks until a batched flush covers the commit
        # record and may raise CommitNotDurableError if a crash wins the
        # race — in which case the transaction was never acknowledged
        # and restart rolls it back.
        self._log.force_for_commit(txn.last_lsn)
        if self._halted:
            # A crash landed while this commit was in flight and the
            # force above may have run against the *resumed* log (the
            # record itself died in the volatile tail).  Whether the
            # COMMIT made it is unknowable from here — never
            # acknowledge; restart decides, as for any in-doubt commit.
            raise CommitNotDurableError(
                f"txn {txn.txn_id}: crash raced the commit; outcome "
                "decided by restart"
            )
        txn.status = TxnStatus.COMMITTED
        # Timestamp the commit (durable) before its locks drop: a
        # snapshot begun after the release must already see it.
        on_commit = self.on_commit
        if on_commit is not None and wrote_data:
            on_commit(txn.txn_id, commit_lsn)
        released = self._locks.release_all(txn.txn_id)
        self._stats.incr("txn.locks_released_at_commit", released)
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id, undoable=False)
        try:
            self.log_for(txn, end)
        except LogHaltedError:
            # The commit record is already durable — the transaction IS
            # committed and the caller must be acknowledged.  The END
            # record (a crash landed right here) dies with the volatile
            # tail; restart handles a committed transaction without one.
            pass
        txn.status = TxnStatus.ENDED
        self.forget(txn.txn_id)
        self._stats.incr("txn.committed")
        # Synchronous replication holds the *acknowledgement* (not the
        # commit — that is already durable and irreversible) until a
        # standby confirms durable receipt.  Read-only transactions
        # changed nothing a failover could lose, so they skip the gate.
        gate = self.commit_gate
        if gate is not None and wrote_data:
            gate(commit_lsn)

    # -- two-phase commit (presumed abort) --------------------------------------

    def prepare(self, txn: Transaction, gid: str) -> str:
        """Phase 1: vote on global transaction ``gid``.

        A read-only branch (no log records) votes ``read-only`` and
        vanishes immediately — presumed abort needs nothing from it and
        the coordinator drops it from phase 2.  Otherwise the branch
        forces a PREPARE record carrying its COMMIT-duration lock set
        and parks as PREPARED: locks held, neither loser nor winner,
        until :meth:`commit_prepared` or :meth:`rollback_prepared`.
        """
        if not txn.is_active:
            raise TransactionNotActiveError(f"cannot prepare {txn!r}")
        self._check_owned(txn)
        if txn.first_lsn == NULL_LSN:
            released = self._locks.release_all(txn.txn_id)
            self._stats.incr("txn.locks_released_at_commit", released)
            txn.status = TxnStatus.ENDED
            self.forget(txn.txn_id)
            self._stats.incr("txn.votes_read_only")
            return VOTE_READ_ONLY
        locks = encode_lock_table(
            [
                (name, mode.value)
                for name, mode, duration in self._locks.locks_of(txn.txn_id)
                if duration is LockDuration.COMMIT
            ]
        )
        record = prepare_record(txn.txn_id, gid, locks)
        prepare_lsn = self.log_for(txn, record)
        # Forced like a commit: the vote must survive a crash, else the
        # coordinator could commit a global transaction whose branch is
        # rolled back as a restart loser.
        self._log.force_for_commit(txn.last_lsn)
        if self._halted:
            # Same race as commit: the force may have run against the
            # resumed log.  Vote no; a durable PREPARE is resolved by
            # presumed-abort recovery.
            raise CommitNotDurableError(
                f"txn {txn.txn_id}: crash raced the prepare; vote withheld"
            )
        txn.status = TxnStatus.PREPARED
        txn.gid = gid
        txn.prepare_lsn = prepare_lsn
        self._stats.incr("txn.prepared")
        return VOTE_YES

    def commit_prepared(self, txn: Transaction) -> None:
        """Phase 2, decision = commit, for a PREPARED branch."""
        if not txn.is_prepared:
            raise TransactionNotActiveError(f"cannot commit-prepared {txn!r}")
        commit = LogRecord(
            kind=RecordKind.COMMIT,
            txn_id=txn.txn_id,
            payload={"gid": txn.gid},
            undoable=False,
        )
        commit_lsn = self.log_for(txn, commit)
        self._log.force_for_commit(txn.last_lsn)
        txn.status = TxnStatus.COMMITTED
        on_commit = self.on_commit
        if on_commit is not None:
            on_commit(txn.txn_id, commit_lsn)
        released = self._locks.release_all(txn.txn_id)
        self._stats.incr("txn.locks_released_at_commit", released)
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id, undoable=False)
        try:
            self.log_for(txn, end)
        except LogHaltedError:
            pass  # commit record durable: restart ENDs it (same as commit)
        txn.status = TxnStatus.ENDED
        self.forget(txn.txn_id)
        self._stats.incr("txn.committed")
        self._stats.incr("txn.prepared_committed")

    def rollback_prepared(self, ctx: "Database", txn: Transaction) -> None:
        """Phase 2, decision = abort, for a PREPARED branch."""
        if not txn.is_prepared:
            raise TransactionNotActiveError(f"cannot rollback-prepared {txn!r}")
        rollback = LogRecord(
            kind=RecordKind.ROLLBACK, txn_id=txn.txn_id, undoable=False
        )
        self.log_for(txn, rollback)
        txn.status = TxnStatus.ROLLING_BACK
        txn.in_rollback = True
        try:
            self.undo_to(ctx, txn, NULL_LSN)
        finally:
            txn.in_rollback = False
        txn.status = TxnStatus.ABORTED
        released = self._locks.release_all(txn.txn_id)
        self._stats.incr("txn.locks_released_at_rollback", released)
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id, undoable=False)
        self.log_for(txn, end)
        txn.status = TxnStatus.ENDED
        self.forget(txn.txn_id)
        self._stats.incr("txn.rolled_back")
        self._stats.incr("txn.prepared_aborted")

    # -- rollback --------------------------------------------------------------------

    def rollback(self, ctx: "Database", txn: Transaction) -> None:
        """Total rollback."""
        if not txn.is_active:
            raise TransactionNotActiveError(f"cannot rollback {txn!r}")
        self._check_owned(txn)
        rollback = LogRecord(
            kind=RecordKind.ROLLBACK, txn_id=txn.txn_id, undoable=False
        )
        self.log_for(txn, rollback)
        txn.status = TxnStatus.ROLLING_BACK
        txn.in_rollback = True
        try:
            self.undo_to(ctx, txn, NULL_LSN)
        finally:
            txn.in_rollback = False
        txn.status = TxnStatus.ABORTED
        released = self._locks.release_all(txn.txn_id)
        self._stats.incr("txn.locks_released_at_rollback", released)
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id, undoable=False)
        self.log_for(txn, end)
        txn.status = TxnStatus.ENDED
        self.forget(txn.txn_id)
        self._stats.incr("txn.rolled_back")

    def savepoint(self, txn: Transaction, name: str) -> int:
        """Establish a savepoint at the transaction's current position."""
        txn.savepoints[name] = txn.last_lsn
        return txn.last_lsn

    def rollback_to_savepoint(self, ctx: "Database", txn: Transaction, name: str) -> None:
        """Partial rollback.  Locks acquired since the savepoint are
        retained (per ARIES, releasing them would jeopardize repeatable
        read for data the transaction may have read)."""
        if not txn.is_active:
            raise TransactionNotActiveError(f"cannot partially rollback {txn!r}")
        save_lsn = txn.savepoints[name]
        txn.in_rollback = True
        try:
            self.undo_to(ctx, txn, save_lsn)
        finally:
            txn.in_rollback = False
        self._stats.incr("txn.partial_rollbacks")

    def undo_to(self, ctx: "Database", txn: Transaction, stop_lsn: int) -> None:
        """Walk the undo chain back to (exclusive) ``stop_lsn``."""
        lsn = txn.undo_next_lsn
        while lsn > stop_lsn:
            record = self._log.read(lsn)
            if record.is_clr:
                lsn = record.undo_next_lsn or NULL_LSN
            elif record.kind is RecordKind.UPDATE and record.undoable:
                self._registry.undo(ctx, txn, record)
                self._stats.incr("txn.records_undone")
                lsn = record.prev_lsn
            else:
                lsn = record.prev_lsn
            txn.undo_next_lsn = lsn

    # -- nested top actions ------------------------------------------------------------

    def begin_nta(self, txn: Transaction) -> None:
        """Remember the LSN the eventual dummy CLR must point back to
        (Figure 8: 'Remember LSN of last log record of transaction')."""
        txn.nta_stack.append(txn.last_lsn)

    def end_nta(self, txn: Transaction) -> int:
        """Seal the innermost nested top action with a dummy CLR."""
        start_lsn = txn.nta_stack.pop()
        record = dummy_clr(txn.txn_id, undo_next_lsn=start_lsn)
        lsn = self.log_for(txn, record)
        self._stats.incr("txn.nta_completed")
        return lsn

    def abandon_nta(self, txn: Transaction) -> None:
        """Drop the innermost NTA marker without sealing it (the NTA was
        interrupted; its records remain undoable, which is the desired
        outcome per §1.2)."""
        txn.nta_stack.pop()
