"""Resource-manager dispatch.

The log manager is oblivious to record semantics; each *resource
manager* (the heap, the B+-tree) registers handlers for its own
``(rm, op)`` records:

- ``redo(ctx, record)`` — reapply the change page-oriented during the
  redo pass (and for CLRs).  Must be idempotent under the page-LSN
  test, which the redo driver performs before calling.
- ``undo(ctx, txn, record)`` — roll back one update during normal or
  restart undo.  The handler decides page-oriented vs. logical undo,
  applies the inverse change, and writes the CLR(s) itself.

``ctx`` is the owning :class:`repro.db.Database`; handlers reach the
buffer pool, latches, and index objects through it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.common.errors import RecoveryError
from repro.wal.records import LogRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db import Database
    from repro.txn.transaction import Transaction


class ResourceManager(Protocol):
    """Interface each resource manager implements."""

    def apply_redo(self, ctx: "Database", page: object, record: LogRecord) -> None:
        """Reapply ``record``'s change to the already-fixed ``page``.

        The redo driver has verified ``page.page_lsn < record.lsn`` and
        stamps the page LSN afterwards; this method only mutates
        content."""

    def make_shell(self, record: LogRecord) -> object:
        """Build an empty page object for a page that does not exist
        yet (its creating record is being redone, or a later record
        carries the full state)."""

    def undo(self, ctx: "Database", txn: "Transaction", record: LogRecord) -> None:
        """Undo ``record``, writing compensation log records."""


class ResourceManagerRegistry:
    """Maps rm tags to their handlers."""

    def __init__(self) -> None:
        self._managers: dict[str, ResourceManager] = {}

    def register(self, rm: str, manager: ResourceManager) -> None:
        self._managers[rm] = manager

    def get(self, rm: str) -> ResourceManager:
        manager = self._managers.get(rm)
        if manager is None:
            raise RecoveryError(f"no resource manager registered for {rm!r}")
        return manager

    def undo(self, ctx: "Database", txn: "Transaction", record: LogRecord) -> None:
        self.get(record.rm).undo(ctx, txn, record)
