"""Transaction state.

A transaction carries its ARIES bookkeeping: ``last_lsn`` (head of its
backward log-record chain), rollback status, savepoints, and the stack
of nested-top-action begin points (§1.2).  ``in_rollback`` matters to
the index manager: per §4, a rolling-back transaction requests **no
locks**, which is why it can never deadlock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.wal.records import NULL_LSN


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"  # commit record written, end record pending
    ROLLING_BACK = "rolling_back"
    ENDED = "ended"
    ABORTED = "aborted"  # rollback finished
    #: Two-phase commit: PREPARE forced, coordinator decision pending.
    #: Neither a loser nor a winner at restart — held in-doubt with its
    #: locks until the coordinator resolves it (presumed abort).
    PREPARED = "prepared"


@dataclass
class Transaction:
    txn_id: int
    status: TxnStatus = TxnStatus.ACTIVE
    last_lsn: int = NULL_LSN
    #: LSN of this transaction's first record (bounds log truncation:
    #: a total rollback needs the chain back to here).
    first_lsn: int = NULL_LSN
    #: Where undo should resume for this transaction (restart recovery
    #: tracks this across the single backward sweep).
    undo_next_lsn: int = NULL_LSN
    savepoints: dict[str, int] = field(default_factory=dict)
    nta_stack: list[int] = field(default_factory=list)
    in_rollback: bool = False
    #: Set on read-only snapshot transactions (:mod:`repro.mvcc`): the
    #: Snapshot/HorizonSnapshot whose commit-order view this
    #: transaction reads.  A snapshot transaction acquires no locks and
    #: may not log (``log_for`` enforces it).
    snapshot: object | None = None
    #: Global transaction id when this branch was PREPAREd (2PC).
    gid: str | None = None
    #: LSN of this branch's PREPARE record.
    prepare_lsn: int = NULL_LSN

    @property
    def is_active(self) -> bool:
        return self.status is TxnStatus.ACTIVE

    @property
    def is_prepared(self) -> bool:
        return self.status is TxnStatus.PREPARED

    def note_logged(self, lsn: int) -> None:
        """Record that this transaction just wrote the record at ``lsn``."""
        if self.first_lsn == NULL_LSN:
            self.first_lsn = lsn
        self.last_lsn = lsn
        self.undo_next_lsn = lsn

    def __repr__(self) -> str:
        return (
            f"<Txn {self.txn_id} {self.status.value} "
            f"last_lsn={self.last_lsn} undo_next={self.undo_next_lsn}>"
        )
