"""Transactions: state, resource-manager dispatch, commit/rollback."""

from repro.txn.manager import TransactionManager
from repro.txn.rm import ResourceManager, ResourceManagerRegistry
from repro.txn.transaction import Transaction, TxnStatus

__all__ = [
    "ResourceManager",
    "ResourceManagerRegistry",
    "Transaction",
    "TransactionManager",
    "TxnStatus",
]
