"""Page-oriented media recovery (§5).

ARIES/IM indexes support the same media recovery as data: take a fuzzy
image copy (no quiescing — pages are dumped as they sit on disk, and
the dump remembers the LSN horizon from which changes might be
missing), and when a page later turns out damaged, reload it from the
dump and roll it forward by applying that page's log records in one
pass.  No tree traversal, no other pages touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import RecoveryError
from repro.wal.records import NULL_LSN

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


@dataclass
class ImageCopy:
    """A fuzzy dump: page images plus the redo horizon."""

    pages: dict[int, bytes] = field(default_factory=dict)
    start_lsn: int = NULL_LSN


def take_image_copy(ctx: "Database") -> ImageCopy:
    """Dump every on-disk page, fuzzily.

    The horizon is the smaller of the current dirty-page recLSNs and
    the current end of log: changes at or after it may be missing from
    the dumped images and must be replayed at restore time.
    """
    dirty = ctx.buffer.dirty_page_table()
    horizon = min(dirty.values()) if dirty else ctx.log.end_lsn
    copy = ImageCopy(pages=ctx.disk.image_copy(), start_lsn=horizon)
    ctx.stats.incr("recovery.image_copies")
    return copy


def recover_page(ctx: "Database", page_id: int, dump: ImageCopy) -> int:
    """Restore one damaged page from ``dump`` and roll it forward.

    Returns the number of log records applied.  One pass of the log
    (§1's media-recovery measure), filtered to this page.
    """
    raw = dump.pages.get(page_id)
    ctx.buffer.discard(page_id)
    if raw is not None:
        ctx.disk.restore_page(page_id, raw)
        page = ctx.buffer.fix(page_id)  # reads the restored image
    else:
        # Created after the dump: rebuild from its creation record.
        ctx.disk.deallocate(page_id)
        page = None
    applied = 0
    try:
        for record in ctx.log.records(dump.start_lsn):
            if not record.is_redoable or record.page_id != page_id:
                continue
            if page is None:
                shell = ctx.rm_registry.get(record.rm).make_shell(record)
                page = ctx.buffer.fix_new(shell)
            if page.page_lsn >= record.lsn:
                continue
            ctx.rm_registry.get(record.rm).apply_redo(ctx, page, record)
            page.page_lsn = record.lsn
            ctx.buffer.mark_dirty(page_id, record.lsn)
            applied += 1
    finally:
        if page is not None:
            ctx.buffer.unfix(page_id)
    if page is None:
        raise RecoveryError(
            f"page {page_id} is in neither the image copy nor the log"
        )
    ctx.stats.incr("recovery.media_recoveries")
    ctx.stats.incr("recovery.media_records_applied", applied)
    return applied
