"""Page-oriented media recovery (§5).

ARIES/IM indexes support the same media recovery as data: take a fuzzy
image copy (no quiescing — pages are dumped as they sit on disk, and
the dump remembers the LSN horizon from which changes might be
missing), and when a page later turns out damaged, reload it from the
dump and roll it forward by applying that page's log records in one
pass.  No tree traversal, no other pages touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import CorruptPageError, RecoveryError
from repro.storage.faults import with_io_retries
from repro.wal.records import NULL_LSN

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


@dataclass
class ImageCopy:
    """A fuzzy dump: page images plus the redo horizon.

    ``end_lsn`` records the log end at dump time — a point-in-time
    restore cannot target an LSN before it (the fuzzy images may
    already contain effects up to there).
    """

    pages: dict[int, bytes] = field(default_factory=dict)
    start_lsn: int = NULL_LSN
    end_lsn: int = NULL_LSN


def take_image_copy(ctx: "Database") -> ImageCopy:
    """Dump every on-disk page, fuzzily.

    The horizon is the smaller of the current dirty-page recLSNs and
    the current end of log: changes at or after it may be missing from
    the dumped images and must be replayed at restore time.
    """
    dirty = ctx.buffer.dirty_page_table()
    horizon = min(dirty.values()) if dirty else ctx.log.end_lsn
    copy = ImageCopy(
        pages=ctx.disk.image_copy(),
        start_lsn=horizon,
        end_lsn=ctx.log.end_lsn,
    )
    ctx.stats.incr("recovery.image_copies")
    return copy


def recover_page(ctx: "Database", page_id: int, dump: ImageCopy) -> int:
    """Restore one damaged page from ``dump`` and roll it forward.

    Returns the number of log records applied.  One pass of the log
    (§1's media-recovery measure), filtered to this page.
    """
    raw = dump.pages.get(page_id)
    ctx.buffer.discard(page_id)
    if raw is not None:
        ctx.disk.restore_page(page_id, raw)
        page = ctx.buffer.fix(page_id)  # reads the restored image
    else:
        # Created after the dump: rebuild from its creation record.
        ctx.disk.deallocate(page_id)
        page = None
    applied = 0
    try:
        for record in ctx.history_records(dump.start_lsn):
            if not record.is_redoable or record.page_id != page_id:
                continue
            if page is None:
                shell = ctx.rm_registry.get(record.rm).make_shell(record)
                page = ctx.buffer.fix_new(shell)
            if page.page_lsn >= record.lsn:
                continue
            ctx.rm_registry.get(record.rm).apply_redo(ctx, page, record)
            page.page_lsn = record.lsn
            ctx.buffer.mark_dirty(page_id, record.lsn)
            applied += 1
    finally:
        if page is not None:
            ctx.buffer.unfix(page_id)
    if page is None:
        raise RecoveryError(
            f"page {page_id} is in neither the image copy nor the log"
        )
    ctx.stats.incr("recovery.media_recoveries")
    ctx.stats.incr("recovery.media_records_applied", applied)
    return applied


# -- self-healing without a dump ---------------------------------------------


def rebuild_page_from_log(ctx: "Database", page_id: int) -> int:
    """Rebuild a damaged page purely from the log (no image copy).

    A page whose on-disk image failed its integrity check (torn write,
    media damage) is treated like a page that never reached disk: its
    image is discarded and its entire history — page-format record
    onward — is replayed in one page-filtered pass over the full record
    history (archived WAL segments, when an archive is attached, then
    the live log).  Requires that history back to the page's birth
    still exists; otherwise only dump-based :func:`recover_page` can
    help and a :class:`RecoveryError` is raised.

    Returns the number of log records applied.  The rebuilt page is
    left dirty in the buffer pool so it eventually reaches disk.
    """
    ctx.buffer.discard(page_id)
    ctx.disk.deallocate(page_id)
    page = None
    applied = 0
    try:
        for record in ctx.history_records(1):
            if not record.is_redoable or record.page_id != page_id:
                continue
            if page is None:
                shell = ctx.rm_registry.get(record.rm).make_shell(record)
                page = ctx.buffer.fix_new(shell)
            if page.page_lsn >= record.lsn:
                continue
            ctx.rm_registry.get(record.rm).apply_redo(ctx, page, record)
            page.page_lsn = record.lsn
            ctx.buffer.mark_dirty(page_id, record.lsn)
            applied += 1
    finally:
        if page is not None:
            ctx.buffer.unfix(page_id)
    if page is None:
        raise RecoveryError(
            f"page {page_id} is damaged and its history is not in the log "
            "(trimmed?); media recovery from an image copy is required"
        )
    ctx.stats.incr("recovery.pages_rebuilt_from_log")
    ctx.stats.incr("recovery.media_records_applied", applied)
    return applied


@dataclass
class ScrubResult:
    """What the restart scrub pass found and repaired."""

    pages_checked: int = 0
    pages_rebuilt: int = 0
    records_applied: int = 0


def run_scrub(ctx: "Database") -> ScrubResult:
    """Verify every on-disk page's integrity; self-heal the damaged ones.

    Runs at restart between analysis and redo.  A torn write can land
    on a page that redo would never visit (flushed clean before the
    checkpoint, so absent from the reconstructed dirty page table), so
    waiting for redo to trip over damage is not enough: every page is
    checked, and each corrupt one is rebuilt from the log.  Transient
    read faults are absorbed by the usual bounded retry.
    """
    result = ScrubResult()
    for page_id in ctx.disk.page_ids():
        result.pages_checked += 1
        try:
            with_io_retries(
                lambda pid=page_id: ctx.disk.read(pid),
                ctx.config.io_retry_limit,
                ctx.config.io_retry_backoff_seconds,
                ctx.stats,
            )
        except CorruptPageError:
            result.records_applied += rebuild_page_from_log(ctx, page_id)
            result.pages_rebuilt += 1
    ctx.stats.incr("recovery.scrub_passes")
    if result.pages_rebuilt:
        ctx.stats.incr("recovery.scrub_pages_rebuilt", result.pages_rebuilt)
    return result
