"""Restart analysis pass (§1.2).

Starting from the last complete checkpoint's begin record (found via
the master record), scan forward to the end of the (durable) log,
rebuilding:

- the **transaction table**: every transaction with log activity and no
  END record, with its last LSN and undo-next LSN — the losers the undo
  pass will roll back (transactions with a COMMIT but no END are
  winners and merely get their END written);
- the **dirty page table**: page → recLSN for every page a redoable
  record touched, seeding redo's starting point (the minimum recLSN).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.txn.transaction import Transaction, TxnStatus
from repro.wal.records import NULL_LSN, RM_HEAP, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


@dataclass
class AnalysisResult:
    transactions: dict[int, Transaction] = field(default_factory=dict)
    dirty_pages: dict[int, int] = field(default_factory=dict)
    redo_lsn: int = NULL_LSN
    end_lsn: int = NULL_LSN
    records_scanned: int = 0
    max_txn_id: int = 0
    next_txn_id: int = 0
    """Floor carried by the newest checkpoint seen (0 if none recorded
    one); together with ``max_txn_id`` it re-establishes the no-reuse
    transaction-id floor without a full-history scan."""
    ended_txn_ids: set[int] = field(default_factory=set)
    """Transactions whose END record fell inside the analysis span.
    The checkpoint-payload merge must not resurrect them: a fuzzy
    checkpoint snapshots its transaction table *between* its begin and
    end records, so a transaction that ends inside that window appears
    both in the scan (which pops it at its END) and, stale, in the
    payload."""
    page_heads: dict[int, int] = field(default_factory=dict)
    """Page → LSN of the newest record seen for it: the tail of each
    dirty page's per-page log chain, merged from the scan and the
    checkpoint-carried ``last_lsn`` entries.  Instant restart walks the
    chain backwards from here to recover one page without scanning the
    redo span; every restart also re-seeds the log manager's volatile
    chain map from it."""
    heap_formats: dict[int, set[int]] = field(default_factory=dict)
    """Table id → heap pages formatted inside the analysis span.  Pages
    formatted earlier are already reflected wherever the in-memory heap
    views came from (the pre-crash process, or a standby's applied
    stream — the standby advances its master record in the same loop
    that notes formats, so its view always covers everything at or
    before the master checkpoint)."""

    @property
    def losers(self) -> list[Transaction]:
        return [
            t
            for t in self.transactions.values()
            if t.status in (TxnStatus.ACTIVE, TxnStatus.ROLLING_BACK)
        ]

    @property
    def winners_needing_end(self) -> list[Transaction]:
        return [
            t for t in self.transactions.values() if t.status is TxnStatus.COMMITTED
        ]

    @property
    def prepared(self) -> list[Transaction]:
        """In-doubt branches: PREPARE forced, no decision on this log.
        Neither losers (undo must not touch them) nor winners — restart
        reacquires their locks and parks them for the coordinator."""
        return [
            t for t in self.transactions.values() if t.status is TxnStatus.PREPARED
        ]


def run_analysis(ctx: "Database") -> AnalysisResult:
    result = AnalysisResult()
    start_lsn = ctx.log.master_lsn or 1
    checkpoint_begin_seen = False

    for record in ctx.log.records(start_lsn):
        result.records_scanned += 1
        result.end_lsn = record.lsn
        kind = record.kind

        if kind is RecordKind.CKPT_BEGIN:
            checkpoint_begin_seen = True
            continue
        if kind is RecordKind.CKPT_END:
            if checkpoint_begin_seen:
                _merge_checkpoint(result, record.payload)
            continue

        if record.txn_id > result.max_txn_id:
            result.max_txn_id = record.txn_id

        if record.txn_id:
            txn = result.transactions.get(record.txn_id)
            if txn is None:
                txn = Transaction(txn_id=record.txn_id)
                result.transactions[txn.txn_id] = txn
            txn.last_lsn = record.lsn
            if kind is RecordKind.UPDATE and record.undoable:
                txn.undo_next_lsn = record.lsn
            elif kind in (RecordKind.CLR, RecordKind.DUMMY_CLR):
                txn.undo_next_lsn = record.undo_next_lsn or NULL_LSN
            elif kind is RecordKind.COMMIT:
                txn.status = TxnStatus.COMMITTED
            elif kind is RecordKind.PREPARE:
                txn.status = TxnStatus.PREPARED
                txn.gid = record.payload.get("gid")
                txn.prepare_lsn = record.lsn
            elif kind is RecordKind.ROLLBACK:
                txn.status = TxnStatus.ROLLING_BACK
            elif kind is RecordKind.END:
                result.transactions.pop(record.txn_id, None)
                result.ended_txn_ids.add(record.txn_id)

        if record.is_redoable and record.page_id is not None:
            result.dirty_pages.setdefault(record.page_id, record.lsn)
            result.page_heads[record.page_id] = record.lsn
            if record.rm == RM_HEAP and record.op == "format":
                table_id = record.payload.get("table_id", 0)
                result.heap_formats.setdefault(table_id, set()).add(
                    record.page_id
                )

    if result.dirty_pages:
        result.redo_lsn = min(result.dirty_pages.values())
    ctx.stats.incr("recovery.analysis_passes")
    ctx.stats.incr("recovery.analysis_records", result.records_scanned)
    return result


def _merge_checkpoint(result: AnalysisResult, payload: dict) -> None:
    """Fold the checkpoint-end snapshots in (log records seen after the
    checkpoint begin take precedence, so only fill gaps)."""
    for entry in payload.get("txn_table", ()):
        txn_id = entry["txn_id"]
        if txn_id in result.transactions or txn_id in result.ended_txn_ids:
            continue
        txn = Transaction(txn_id=txn_id)
        txn.status = TxnStatus(entry["status"])
        txn.last_lsn = entry["last_lsn"]
        txn.undo_next_lsn = entry["undo_next_lsn"]
        txn.gid = entry.get("gid")
        txn.prepare_lsn = entry.get("prepare_lsn", NULL_LSN)
        result.transactions[txn_id] = txn
    for entry in payload.get("dirty_pages", ()):
        page_id = entry["page_id"]
        rec_lsn = entry["rec_lsn"]
        current = result.dirty_pages.get(page_id)
        if current is None or rec_lsn < current:
            result.dirty_pages[page_id] = rec_lsn
        last_lsn = entry.get("last_lsn", NULL_LSN)
        if last_lsn > result.page_heads.get(page_id, NULL_LSN):
            result.page_heads[page_id] = last_lsn
    floor = payload.get("next_txn_id", 0)
    if floor > result.next_txn_id:
        result.next_txn_id = floor
