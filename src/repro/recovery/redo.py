"""Restart redo pass: repeating history (§1.2).

From the minimum recLSN in the reconstructed dirty page table, every
redoable record (updates *and* CLRs) whose page might be stale is
reapplied — for all transactions, including losers.  The test is the
classic ARIES page-LSN comparison: a page whose ``page_lsn`` is at or
beyond the record's LSN already contains the change.

All redo work is **page-oriented**: the record names its page, the tree
is never traversed (§3, "Logging").  Pages that never made it to disk
are rebuilt from their format records (or as shells that an immediately
following full-state record fills in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import CorruptPageError, PageNotFoundError
from repro.recovery.analysis import AnalysisResult
from repro.wal.records import NULL_LSN

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


@dataclass
class RedoResult:
    records_examined: int = 0
    records_redone: int = 0
    pages_touched: int = 0


def apply_record(
    ctx: "Database", record, rec_lsn: int | None = None
) -> bool:
    """Apply one redoable record to its page, page-oriented.

    The single redo primitive shared by restart redo, the hot standby's
    continuous-redo loop, and point-in-time restore: fix the page
    (materialising a shell or rebuilding from history if it is missing
    or damaged), run the ARIES page-LSN test, and reapply iff the page
    predates the record.  ``rec_lsn`` is the dirty-page-table recLSN to
    pin (restart redo knows it); without one the page is marked dirty
    at the record's own LSN (first-dirtier wins).  Returns whether the
    page actually changed.
    """
    page_id = record.page_id
    rm = ctx.rm_registry.get(record.rm)
    try:
        page = ctx.buffer.fix(page_id)
    except PageNotFoundError:
        page = ctx.buffer.fix_new(rm.make_shell(record))
    except CorruptPageError:
        # A torn/damaged data page is treated like a missing one:
        # rebuild it from its full log history (the scrub pass does
        # this for every on-disk page; this guards pages damaged
        # between scrub and redo, e.g. by a media-recovery test).
        from repro.recovery.media import rebuild_page_from_log

        rebuild_page_from_log(ctx, page_id)
        page = ctx.buffer.fix(page_id)
    try:
        if page.page_lsn < record.lsn:
            rm.apply_redo(ctx, page, record)
            page.page_lsn = record.lsn
            if rec_lsn is not None:
                ctx.buffer.set_rec_lsn(page_id, rec_lsn)
            else:
                ctx.buffer.mark_dirty(page_id, record.lsn)
            ctx.stats.incr("recovery.records_redone")
            return True
        return False
    finally:
        ctx.buffer.unfix(page_id)


def run_redo(ctx: "Database", analysis: AnalysisResult) -> RedoResult:
    result = RedoResult()
    if analysis.redo_lsn == NULL_LSN:
        ctx.stats.incr("recovery.redo_passes")
        return result
    dirty_pages = analysis.dirty_pages
    touched: set[int] = set()

    for record in ctx.log.records(analysis.redo_lsn):
        if not record.is_redoable:
            continue
        result.records_examined += 1
        page_id = record.page_id
        rec_lsn = dirty_pages.get(page_id)
        if rec_lsn is None or record.lsn < rec_lsn:
            continue  # the page's disk version is known to be current
        if apply_record(ctx, record, rec_lsn=rec_lsn):
            result.records_redone += 1
        touched.add(page_id)

    result.pages_touched = len(touched)
    ctx.stats.incr("recovery.redo_passes")
    ctx.stats.incr("recovery.redo_pages_accessed", len(touched))
    return result
