"""Fuzzy checkpoints (§1.2).

A checkpoint is a ``CKPT_BEGIN`` / ``CKPT_END`` record pair; the end
record carries snapshots of the transaction table and the dirty page
table taken *without* quiescing anything (hence fuzzy).  The master
record then points at the begin record, which is where the next
restart's analysis pass starts reading.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.txn.transaction import TxnStatus
from repro.wal.records import LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


def take_checkpoint(ctx: "Database") -> int:
    """Write a fuzzy checkpoint; returns the begin record's LSN."""
    begin = LogRecord(kind=RecordKind.CKPT_BEGIN, txn_id=0, undoable=False)
    begin_lsn = ctx.log.append(begin)

    txn_table = []
    for txn in ctx.txns.table_snapshot().values():
        if txn.status in (TxnStatus.ENDED,):
            continue
        entry = {
            "txn_id": txn.txn_id,
            "status": txn.status.value,
            "last_lsn": txn.last_lsn,
            "undo_next_lsn": txn.undo_next_lsn,
        }
        if txn.is_prepared:
            # Carry the in-doubt identity so an analysis pass whose scan
            # starts after the PREPARE record still knows where it is.
            entry["gid"] = txn.gid
            entry["prepare_lsn"] = txn.prepare_lsn
        txn_table.append(entry)
    dirty_pages = [
        {
            "page_id": page_id,
            "rec_lsn": rec_lsn,
            # Tail of the page's log chain, so a restart whose analysis
            # span starts here can still walk the chain for pages not
            # touched after this checkpoint.
            "last_lsn": ctx.log.page_chain_head(page_id) or rec_lsn,
        }
        for page_id, rec_lsn in ctx.buffer.dirty_page_table().items()
    ]
    end = LogRecord(
        kind=RecordKind.CKPT_END,
        txn_id=0,
        undoable=False,
        payload={
            "txn_table": txn_table,
            "dirty_pages": dirty_pages,
            "next_txn_id": ctx.txns.next_txn_id,
        },
    )
    ctx.log.append(end)
    ctx.log.force()
    ctx.log.write_master(begin_lsn)
    ctx.stats.incr("recovery.checkpoints_taken")
    return begin_lsn
