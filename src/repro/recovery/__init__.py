"""ARIES restart and media recovery."""

from repro.recovery.analysis import AnalysisResult, run_analysis
from repro.recovery.checkpoint import take_checkpoint
from repro.recovery.instant import (
    InstantRestartReport,
    RecoveryGovernor,
    run_instant_restart,
)
from repro.recovery.media import ImageCopy, recover_page, take_image_copy
from repro.recovery.redo import RedoResult, run_redo
from repro.recovery.restart import RestartReport, run_restart
from repro.recovery.undo import UndoResult, run_undo

__all__ = [
    "AnalysisResult",
    "ImageCopy",
    "InstantRestartReport",
    "RecoveryGovernor",
    "RedoResult",
    "RestartReport",
    "UndoResult",
    "recover_page",
    "run_analysis",
    "run_instant_restart",
    "run_redo",
    "run_restart",
    "run_undo",
    "take_checkpoint",
    "take_image_copy",
]
