"""Instant restart: serve-while-recovering (Sauer & Härder; Lomet et al.).

Classic ``run_restart`` is stop-the-world: the database is dark until
analysis, a full scrub, full redo, and undo finish — time proportional
to the log span since the last checkpoint.  This module turns recovery
into a *per-page property* instead:

1. **Analysis** runs as usual — one parse-only scan from the last
   checkpoint, so its cost is bounded by the checkpoint interval.  It
   also reconstructs the tail of each dirty page's *per-page log
   chain*: every page record carries ``prev_page_lsn``, the LSN of the
   previous record that touched the same page, so one page's redo work
   is reachable by walking backwards from its chain tail without ever
   scanning the (possibly much longer) redo span.  No page is read,
   and no further log pass runs before the database opens.
2. **Undo** of loser transactions runs eagerly before the database
   opens — its cost is proportional to the in-flight work at crash
   time, not to the log, and running it up front means no new
   transaction can ever observe uncommitted pre-crash state (zero
   stale reads).
3. The database **opens**.  Every page fix now passes through a
   :class:`RecoveryGovernor` hook on the buffer pool: the first touch
   of a still-unrecovered page replays exactly that page's records
   (on-demand single-page recovery), the first touch of a not-yet
   integrity-checked page CRC-verifies it and rebuilds it from the
   full log history if a torn write damaged it (the lazy equivalent of
   the scrub pass).
4. A bounded pool of **background redo workers** partitions the
   remaining pages by page id and drains them behind the foreground.
   Per-page locks make on-demand and background recovery of the same
   page mutually exclusive; the ARIES page-LSN test makes any replay
   idempotent regardless.
5. When the last page drains, the governor takes the deferred restart
   checkpoint and uninstalls itself — the database is ``steady``.

Safety hinges on one invariant: **the buffer's dirty-page table is
pre-seeded** with every analysis DPT entry before the database opens.
A fuzzy checkpoint taken while still recovering (auto-checkpoints fire
on commit traffic!) therefore carries the recLSNs of every unrecovered
page, so a second crash mid-drain loses nothing: the next restart's
analysis re-derives the same pending set.  Log truncation is refused
until the drain finishes (torn pages may need full history to
rebuild).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import (
    CorruptPageError,
    LogHaltedError,
    PageNotFoundError,
    RecoveryTimeoutError,
)
from repro.recovery.analysis import AnalysisResult, run_analysis
from repro.recovery.checkpoint import take_checkpoint
from repro.recovery.media import rebuild_page_from_log
from repro.recovery.redo import RedoResult, apply_record
from repro.recovery.restart import RestartReport, reacquire_prepared_locks
from repro.recovery.undo import run_undo
from repro.txn.transaction import TxnStatus
from repro.wal.records import NULL_LSN, LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


@dataclass
class InstantRestartReport(RestartReport):
    """``RestartReport`` plus the live governor.  ``redo`` is updated
    *progressively* as pages drain; read it after ``wait_drained`` for
    final numbers."""

    governor: "RecoveryGovernor | None" = None


class RecoveryGovernor:
    """Owns the not-yet-recovered page set of one instant restart.

    Thread model: any number of foreground threads (via the buffer
    pool's ``recovery_hook``) plus ``redo_workers`` background threads
    call :meth:`ensure_recovered` concurrently.  A per-page lock
    serializes recovery of one page; the governor's own mutex only
    guards the bookkeeping sets.  Recovery internals re-enter the
    buffer pool to fix pages — a thread-local flag makes the hook a
    no-op on those inner fixes (recovery of page P touches only P, or
    rebuilds P from history, never another unrecovered page).
    """

    def __init__(
        self, ctx: "Database", analysis: AnalysisResult, redo_workers: int = 4
    ) -> None:
        self.ctx = ctx
        self.analysis = analysis
        self.redo_workers = max(1, redo_workers)
        #: Progressively updated; final once drained.
        self.redo = RedoResult()
        self._mutex = threading.Lock()
        self._page_locks: dict[int, threading.Lock] = {}
        #: Pages with redo work outstanding.
        self._pending: set[int] = set()
        #: On-disk pages not yet integrity-checked (lazy scrub).
        self._unverified: set[int] = set()
        self._local = threading.local()
        self._drained_event = threading.Event()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._started_background = False
        self._finished = False
        self._aborted = False
        self._ondemand_count = 0
        self._background_count = 0
        self._errors: list[tuple[int, Exception]] = []

    # -- preparation (before the database opens) ----------------------------

    def prepare(self) -> None:
        """Scan-free setup — no log pass beyond the analysis that
        already ran.  Each page's redo work is reached through its
        backward log chain (``LogRecord.prev_page_lsn``), whose tails
        analysis reconstructed, so the dark window before the database
        opens is bounded by the checkpoint interval, not by the redo
        span.  No data page is read."""
        ctx = self.ctx
        dpt = self.analysis.dirty_pages
        self._pending = set(dpt)
        self._unverified = set(ctx.disk.page_ids()) - self._pending
        # New allocations must not collide with logged-but-unflushed
        # pages.  Every allocated page is either flushed (on disk) or
        # dirty (in the DPT), so the two sets bound the allocator.
        max_page_id = max(
            max(dpt, default=0), max(ctx.disk.page_ids(), default=0)
        )
        if max_page_id:
            ctx.disk.ensure_allocator_above(max_page_id)
        # Pre-seed the buffer DPT (see module docstring): checkpoints
        # taken while recovering must carry every unrecovered recLSN.
        for page_id in self._pending:
            ctx.buffer.set_rec_lsn(page_id, dpt[page_id])
        self._reconcile_heap_views(self.analysis.heap_formats)
        ctx.buffer.recovery_hook = self._on_fix
        ctx.stats.gauge(
            "recovery.pages_unrecovered", len(self._pending) + len(self._unverified)
        )
        ctx.stats.incr("recovery.instant_pages_pending", len(self._pending))

    def _reconcile_heap_views(self, heap_formats: dict[int, set[int]]) -> None:
        """Lazy replacement for ``Database._rebuild_heap_views`` (which
        fixes *every* page and would defeat instant restart).  The WAL
        rule guarantees a heap page on disk has its format record in
        the durable log, so the true page set of a table is: the
        pre-crash in-memory view filtered to pages that still exist on
        disk or appear in the DPT, plus every page the redo span
        formats for that table."""
        ctx = self.ctx
        disk_ids = set(ctx.disk.page_ids())
        dpt = self.analysis.dirty_pages
        for table in ctx.tables.values():
            keep = [
                p for p in table.heap.page_ids if p in disk_ids or p in dpt
            ]
            extra = heap_formats.get(table.table_id, set()) - set(keep)
            table.heap.page_ids = sorted(set(keep) | extra)

    # -- the hook ------------------------------------------------------------

    def _on_fix(self, page_id: int) -> None:
        if self._finished:
            return
        if getattr(self._local, "active", False):
            return  # re-entrant fix from recovery internals
        self.ensure_recovered(page_id)

    # -- per-page recovery ---------------------------------------------------

    def ensure_recovered(self, page_id: int, background: bool = False) -> None:
        """Bring one page to its pre-crash recovered state, exactly once.

        Foreground callers (via the hook) pay the lazy-recovery cost
        inline; if another thread is already recovering the page, they
        wait up to ``ondemand_recovery_timeout_seconds`` for it.
        """
        with self._mutex:
            if self._finished:
                return
            if page_id not in self._pending and page_id not in self._unverified:
                return
            lock = self._page_locks.get(page_id)
            if lock is None:
                lock = self._page_locks[page_id] = threading.Lock()
        timeout = self.ctx.config.ondemand_recovery_timeout_seconds
        if not lock.acquire(timeout=timeout):
            self.ctx.stats.incr("recovery.ondemand_timeouts")
            raise RecoveryTimeoutError(
                f"recovery of page {page_id} did not finish within {timeout}s"
            )
        try:
            with self._mutex:
                if self._finished or self._aborted:
                    return
                pending = page_id in self._pending
                unverified = page_id in self._unverified
            if not pending and not unverified:
                return  # recovered while we waited for the page lock
            self._local.active = True
            try:
                self._recover_page(page_id, pending)
            finally:
                self._local.active = False
            with self._mutex:
                self._pending.discard(page_id)
                self._unverified.discard(page_id)
                remaining = len(self._pending) + len(self._unverified)
                if background:
                    self._background_count += 1
                else:
                    self._ondemand_count += 1
            stats = self.ctx.stats
            stats.incr(
                "recovery.pages_recovered_background"
                if background
                else "recovery.pages_recovered_ondemand"
            )
            stats.gauge("recovery.pages_unrecovered", remaining)
            if remaining == 0:
                self._finish()
        finally:
            lock.release()

    def _chain_lsns(self, page_id: int, rec_lsn: int) -> list[int]:
        """The page's redo-relevant record LSNs, oldest first, from
        walking its backward log chain.  The walk stops below the
        page's recLSN: earlier records (including any earlier
        incarnation of a recycled page id) are already on disk.  Falls
        back to a header-only scan of the redo span when no chain head
        is known — e.g. a ``last_lsn``-less checkpoint written by an
        older build."""
        ctx = self.ctx
        lsn = self.analysis.page_heads.get(page_id, NULL_LSN)
        lsns: list[int] = []
        while lsn != NULL_LSN and lsn >= rec_lsn:
            lsns.append(lsn)
            lsn = ctx.log.read(lsn).prev_page_lsn
        if lsns:
            lsns.reverse()
            return lsns
        for header in ctx.log.record_headers(rec_lsn):
            if header.is_redoable and header.page_id == page_id:
                lsns.append(header.lsn)
        return lsns

    def _recover_page(self, page_id: int, pending: bool) -> None:
        ctx = self.ctx
        if pending:
            rec_lsn = self.analysis.dirty_pages[page_id]
            lsns = self._chain_lsns(page_id, rec_lsn)
            applied = 0
            for lsn in lsns:
                # apply_record materialises a missing page from its
                # format record and rebuilds a torn one from history;
                # the page-LSN test keeps replay idempotent.
                if apply_record(ctx, ctx.log.read(lsn), rec_lsn=rec_lsn):
                    applied += 1
            with self._mutex:
                self.redo.records_examined += len(lsns)
                self.redo.records_redone += applied
                self.redo.pages_touched += 1
            # A page whose disk image already contained every change
            # never became dirty: shed the pre-seeded DPT entry.
            ctx.buffer.forget_clean_entry(page_id)
        else:
            # Lazy scrub: first touch integrity-checks the page (the
            # buffer read runs the CRC) and self-heals torn writes.
            try:
                ctx.buffer.fix(page_id)  # noqa: RPR001 - unfixed on the next line; fix itself raises on corruption
                ctx.buffer.unfix(page_id)
            except CorruptPageError:
                rebuild_page_from_log(ctx, page_id)
                ctx.stats.incr("recovery.lazy_pages_rebuilt")
            except PageNotFoundError:
                pass  # deallocated between listing and touch
            ctx.stats.incr("recovery.lazy_pages_verified")

    # -- background drain ----------------------------------------------------

    def start_background(self) -> None:
        """Launch the bounded worker pool: the remaining pages are
        partitioned by ``page_id % redo_workers`` and drained behind
        the foreground."""
        with self._mutex:
            if self._started_background or self._finished or self._aborted:
                return
            self._started_background = True
            backlog = sorted(self._pending) + sorted(self._unverified)
        if not backlog:
            self._finish()
            return
        workers = min(self.redo_workers, len(backlog))
        shards: list[list[int]] = [[] for _ in range(workers)]
        for page_id in backlog:
            shards[page_id % workers].append(page_id)
        for index, shard in enumerate(shards):
            if not shard:
                continue
            thread = threading.Thread(
                target=self._worker, args=(shard,), name=f"redo-worker-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _worker(self, shard: list[int]) -> None:
        for page_id in shard:
            if self._stop.is_set():
                return
            try:
                self.ensure_recovered(page_id, background=True)
            except Exception as exc:  # noqa: BLE001,RPR005 - must not kill the drain
                if self._stop.is_set():
                    return
                with self._mutex:
                    self._errors.append((page_id, exc))
                self.ctx.stats.incr("recovery.background_errors")

    def drain(self, timeout: float | None = None) -> bool:
        """Recover everything still outstanding on the calling thread
        (retrying pages a background worker failed on), then wait for
        the drained state.  Returns False on abort or timeout."""
        with self._mutex:
            backlog = sorted(self._pending | self._unverified)
        for page_id in backlog:
            if self._stop.is_set():
                break
            self.ensure_recovered(page_id, background=True)
        if timeout is None:
            timeout = self.ctx.config.ondemand_recovery_timeout_seconds
        return self._drained_event.wait(timeout) and not self._aborted

    def wait_drained(self, timeout: float | None = None) -> bool:
        return self._drained_event.wait(timeout) and not self._aborted

    def finish_if_empty(self) -> None:
        """Used by foreground-only mode: a restart with no redo work
        and nothing to verify is steady immediately."""
        with self._mutex:
            if self._pending or self._unverified or self._finished:
                return
        self._finish()

    def _finish(self) -> None:
        with self._mutex:
            if self._finished or self._aborted:
                return
            if self._pending or self._unverified:
                return
            self._finished = True
        ctx = self.ctx
        ctx.buffer.recovery_hook = None
        # The deferred restart checkpoint: the next crash's analysis
        # starts here instead of re-scanning the pre-crash span.
        try:
            if not ctx.log.halted:
                ctx.log.force()
                take_checkpoint(ctx)
        except LogHaltedError:
            pass  # a concurrent crash wins; the next restart re-derives all
        ctx.stats.incr("recovery.instant_drains")
        ctx.stats.gauge("recovery.pages_unrecovered", 0)
        self._drained_event.set()

    # -- lifecycle -----------------------------------------------------------

    def abort(self) -> None:
        """Crash landed mid-drain: stop the workers, uninstall the hook.
        Durable state needs no cleanup — the pre-seeded DPT entries are
        checkpoint-carried, so the next restart redoes what this one
        did not finish."""
        self._stop.set()
        with self._mutex:
            self._aborted = True
            self._finished = True
        self.ctx.buffer.recovery_hook = None
        self._drained_event.set()
        for thread in self._threads:
            thread.join(timeout=2.0)

    # -- observation ---------------------------------------------------------

    @property
    def drained(self) -> bool:
        return self._drained_event.is_set() and not self._aborted

    def progress(self) -> dict:
        with self._mutex:
            return {
                "pages_pending": len(self._pending) + len(self._unverified),
                "pages_redo_pending": len(self._pending),
                "pages_unverified": len(self._unverified),
                "pages_recovered_ondemand": self._ondemand_count,
                "pages_recovered_background": self._background_count,
                "background_errors": len(self._errors),
                "drained": self._drained_event.is_set() and not self._aborted,
            }


def run_instant_restart(
    ctx: "Database", redo_workers: int = 4, background: bool = True
) -> InstantRestartReport:
    """Analysis + eager undo, then open; redo happens on demand and in
    the background (see module docstring).  With ``background=False``
    no workers start — recovery is purely on-demand until the caller
    invokes ``governor.start_background()`` or ``drain()``."""
    tail_dropped = ctx.log.repair_tail()

    analysis = run_analysis(ctx)
    # Restore the volatile per-page chain tails before anything (undo!)
    # appends a page record against the revived log.
    ctx.log.seed_page_chain(analysis.page_heads)
    for txn in analysis.transactions.values():
        ctx.txns.adopt(txn)

    governor = RecoveryGovernor(ctx, analysis, redo_workers=redo_workers)
    governor.prepare()
    ctx.recovery = governor

    # No-reuse floor for transaction ids.  The checkpoint-carried floor
    # covers every id allocated before the checkpoint (including all of
    # the redo span behind it); the analysis scan covers the rest.
    ctx.txns.adopt_floor(max(analysis.next_txn_id, analysis.max_txn_id + 1))

    # Winners that committed but never wrote an END just need one.
    for txn in analysis.winners_needing_end:
        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id, undoable=False)
        ctx.txns.log_for(txn, end)
        txn.status = TxnStatus.ENDED
        ctx.txns.forget(txn.txn_id)

    # In-doubt branches park with their locks re-held (eagerly, before
    # the database opens — conflicting work must block from the first
    # served request, not from when their pages happen to drain).
    reacquire_prepared_locks(ctx, analysis.prepared)

    # Eager undo: loser rollback cost is O(in-flight work), and paying
    # it up front is what guarantees zero stale reads once open.  The
    # pages undo touches are recovered on demand through the hook.
    undo = run_undo(ctx, analysis.losers)
    ctx.log.force()
    ctx.stats.incr("recovery.instant_restarts")

    if background:
        governor.start_background()
    else:
        governor.finish_if_empty()
    return InstantRestartReport(
        analysis=analysis,
        redo=governor.redo,
        undo=undo,
        log_tail_bytes_discarded=tail_dropped,
        log_passes=2,
        governor=governor,
    )
