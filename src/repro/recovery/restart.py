"""Restart recovery orchestration: the passes of ARIES (§1.2).

``run_restart`` assumes the volatile state is already gone (the
database's :meth:`crash` dropped the buffer pool and the unforced log
tail) and performs log-tail repair → analysis → scrub (self-healing of
torn/damaged pages) → redo (repeating history) → undo, then takes a
checkpoint so the next restart is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.locks.modes import LockDuration, LockMode
from repro.recovery.analysis import AnalysisResult, run_analysis
from repro.recovery.checkpoint import take_checkpoint
from repro.recovery.media import ScrubResult, run_scrub
from repro.recovery.redo import RedoResult, run_redo
from repro.recovery.undo import UndoResult, run_undo
from repro.wal.serialization import decode_lock_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database
    from repro.txn.transaction import Transaction


def reacquire_prepared_locks(ctx: "Database", prepared: "list[Transaction]") -> int:
    """Re-grant each in-doubt transaction the COMMIT-duration locks its
    PREPARE record carried, so the branch keeps excluding conflicting
    work until the coordinator's decision arrives.  Runs against the
    fresh (quiescent) post-crash lock table, so conditional requests
    always succeed — a failure means the table was not quiesced and is
    a real bug, hence the assert-style check."""
    granted = 0
    for txn in prepared:
        record = ctx.log.read(txn.prepare_lsn)
        for name, mode in decode_lock_table(record.payload.get("locks")):
            if ctx.locks.request(
                txn.txn_id,
                name,
                LockMode(mode),
                LockDuration.COMMIT,
                conditional=True,
            ):
                granted += 1
    ctx.stats.incr("recovery.prepared_transactions", len(prepared))
    ctx.stats.incr("recovery.prepared_locks_reacquired", granted)
    return granted


@dataclass
class RestartReport:
    """What restart did — the measures the paper cares about (§1):
    passes over the log, pages accessed during redo and undo, and the
    page-oriented vs. logical undo split (read from the stats
    registry) — plus what the robustness layer repaired: log bytes
    discarded from a torn tail, and pages rebuilt by the scrub."""

    analysis: AnalysisResult
    redo: RedoResult
    undo: UndoResult
    scrub: ScrubResult = field(default_factory=ScrubResult)
    log_tail_bytes_discarded: int = 0
    log_passes: int = 3


def run_restart(ctx: "Database") -> RestartReport:
    # The durable log may end mid-record (torn tail): truncate at the
    # first frame that fails its CRC before any pass reads the log.
    tail_dropped = ctx.log.repair_tail()

    analysis = run_analysis(ctx)

    # The log's volatile per-page chain map died with the crash; the
    # first post-restart append to a still-dirty page must link to its
    # pre-crash records, so restore the tails analysis reconstructed.
    ctx.log.seed_page_chain(analysis.page_heads)

    # Adopt reconstructed in-flight transactions so undo can log CLRs
    # through the ordinary transaction machinery.
    for txn in analysis.transactions.values():
        ctx.txns.adopt(txn)

    # Self-heal: every on-disk page is integrity-checked and corrupt
    # ones (torn writes) are rebuilt from the log before redo relies
    # on the page-LSN comparison.
    scrub = run_scrub(ctx)

    redo = run_redo(ctx, analysis)

    # Winners that committed but never wrote an END just need one.
    for txn in analysis.winners_needing_end:
        from repro.txn.transaction import TxnStatus
        from repro.wal.records import LogRecord, RecordKind

        end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id, undoable=False)
        ctx.txns.log_for(txn, end)
        txn.status = TxnStatus.ENDED
        ctx.txns.forget(txn.txn_id)

    # In-doubt branches (PREPARE forced, decision pending) are neither
    # losers nor winners: park them with their locks re-held until the
    # coordinator resolves them.
    reacquire_prepared_locks(ctx, analysis.prepared)

    undo = run_undo(ctx, analysis.losers)

    ctx.log.force()
    take_checkpoint(ctx)
    ctx.stats.incr("recovery.restarts")
    return RestartReport(
        analysis=analysis,
        redo=redo,
        undo=undo,
        scrub=scrub,
        log_tail_bytes_discarded=tail_dropped,
    )
