"""Restart undo pass (§1.2, §3).

All loser transactions are rolled back in reverse chronological order
in a single backward sweep: repeatedly pick the loser with the largest
undo-next LSN and process that record.  CLRs (including dummy CLRs
sealing completed nested top actions) only redirect the chain — which
is exactly how a *completed* SMO of a loser survives restart while an
*incomplete* one (no dummy CLR on the durable log) gets undone
page-oriented, restoring structural consistency before any record
whose undo might need to traverse the tree is reached (the POSC
argument of §3).

Losers are marked ``in_rollback``: no locks are requested during undo
(§4), so restart undo cannot deadlock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.txn.transaction import Transaction, TxnStatus
from repro.wal.records import NULL_LSN, LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


@dataclass
class UndoResult:
    transactions_rolled_back: int = 0
    records_undone: int = 0
    records_skipped: int = 0


def run_undo(ctx: "Database", losers: list[Transaction]) -> UndoResult:
    result = UndoResult()
    heap: list[tuple[int, int]] = []
    by_id: dict[int, Transaction] = {}
    for txn in losers:
        txn.in_rollback = True
        txn.status = TxnStatus.ROLLING_BACK
        by_id[txn.txn_id] = txn
        if txn.undo_next_lsn != NULL_LSN:
            heapq.heappush(heap, (-txn.undo_next_lsn, txn.txn_id))
        else:
            _finish(ctx, txn, result)

    while heap:
        neg_lsn, txn_id = heapq.heappop(heap)
        txn = by_id[txn_id]
        lsn = -neg_lsn
        if txn.undo_next_lsn != lsn:
            continue  # stale heap entry
        record = ctx.log.read(lsn)
        next_lsn = _undo_step(ctx, txn, record, result)
        txn.undo_next_lsn = next_lsn
        if next_lsn == NULL_LSN:
            _finish(ctx, txn, result)
        else:
            heapq.heappush(heap, (-next_lsn, txn_id))
    ctx.stats.incr("recovery.undo_passes")
    return result


def _undo_step(
    ctx: "Database", txn: Transaction, record: LogRecord, result: UndoResult
) -> int:
    if record.is_clr:
        result.records_skipped += 1
        return record.undo_next_lsn or NULL_LSN
    if record.kind is RecordKind.UPDATE and record.undoable:
        ctx.rm_registry.undo(ctx, txn, record)
        result.records_undone += 1
        ctx.stats.incr("recovery.records_undone")
        return record.prev_lsn
    result.records_skipped += 1
    return record.prev_lsn


def _finish(ctx: "Database", txn: Transaction, result: UndoResult) -> None:
    txn.in_rollback = False
    txn.status = TxnStatus.ENDED
    end = LogRecord(kind=RecordKind.END, txn_id=txn.txn_id, undoable=False)
    ctx.txns.log_for(txn, end)
    ctx.txns.forget(txn.txn_id)
    result.transactions_rolled_back += 1
    ctx.stats.incr("recovery.losers_rolled_back")
