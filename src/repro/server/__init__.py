"""Embedded multi-threaded database server.

The serving surface the ROADMAP's north star asks for: many concurrent
client sessions over a simple length-prefixed wire protocol (TCP on
localhost, plus an in-process loopback transport for tests), a
:class:`~repro.server.session.Session` owning transaction lifecycle,
an executor pool with admission control, and graceful shutdown that
drains in-flight transactions and takes a final checkpoint.  Pairs
with group commit in the WAL (``DatabaseConfig(group_commit=True)``)
so N concurrent commits cost ~1 synchronous log I/O instead of N.
"""

from repro.server.client import DatabaseClient, RemoteTransaction
from repro.server.protocol import (
    FrameConn,
    MAX_FRAME_BYTES,
    SocketTransport,
    loopback_pair,
)
from repro.server.server import DatabaseServer, ServerConfig
from repro.server.session import Session

__all__ = [
    "DatabaseClient",
    "DatabaseServer",
    "FrameConn",
    "MAX_FRAME_BYTES",
    "RemoteTransaction",
    "ServerConfig",
    "Session",
    "SocketTransport",
    "loopback_pair",
]
