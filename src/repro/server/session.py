"""One client session: connection, transaction lifecycle, op dispatch.

A session owns at most one open transaction at a time.  ``begin``
opens it, ``commit``/``rollback`` close it, and data ops run inside it;
a data op arriving with no transaction open runs *autocommit* (its own
begin/op/commit — the common shape for the load generator's point
requests).  Inside an explicit transaction every data op is wrapped in
a statement savepoint, so a unique-key violation or missing key rolls
back just that statement and the transaction stays usable — the same
idiom the workload harness uses.

The read/respond loop runs on the session's connection thread; the op
itself executes on the server's worker pool (see
:class:`~repro.server.server.DatabaseServer`), which is what bounds
engine concurrency and applies backpressure.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from repro.codec.ops import OP_BY_NAME
from repro.common.errors import (
    DeadlockError,
    KeyNotFoundError,
    LockTimeoutError,
    ProtocolError,
    SessionStateError,
    UniqueKeyViolationError,
)
from repro.server.protocol import FrameConn, error_response
from repro.txn.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.server.server import DatabaseServer
    from repro.txn.manager import PendingCommit

#: Statement errors that roll back to the statement savepoint but keep
#: the surrounding transaction alive.
_STATEMENT_ERRORS = (UniqueKeyViolationError, KeyNotFoundError)
#: Errors that force the whole transaction dead (the engine requires a
#: full rollback after a deadlock victim is chosen).
_TXN_FATAL_ERRORS = (DeadlockError, LockTimeoutError)

_STMT_SAVEPOINT = "__server_stmt__"


class Session:
    """Server-side state of one connected client."""

    def __init__(
        self, server: "DatabaseServer", conn: FrameConn, session_id: int
    ) -> None:
        self.server = server
        self.conn = conn
        self.session_id = session_id
        self.txn: Transaction | None = None
        self.closing = False
        #: Set when a request timed out and the connection was dropped
        #: while the op was still running; whoever finishes the op then
        #: performs the cleanup.
        self.abandoned = False
        self._cleanup_done = False
        self._cleanup_lock = threading.Lock()
        #: Commits deferred by the batch currently executing on this
        #: session (None outside batch execution).  Requests within a
        #: batch run sequentially, so plain lists suffice.
        self._batch_pending: "list[PendingCommit] | None" = None

    def _resolve(self, op: object) -> Callable[[dict], object] | None:
        """The handler method for ``op`` per the shared registry
        (:mod:`repro.codec.ops`) — the same table the client stubs and
        the docs read.  None for unknown ops."""
        spec = OP_BY_NAME.get(op) if isinstance(op, str) else None
        if spec is None:
            return None
        return getattr(self, spec.handler, None)

    # -- connection thread -------------------------------------------------

    def serve(self) -> None:
        """Read requests until EOF/close.

        A pipelining client may have many frames in flight; each read
        drains up to ``max_batch_requests`` of them and batchable ops
        travel through the executor pool as one job (one admission pass,
        commits coalesced into one group flush).  A lone request is the
        degenerate batch of one — the non-pipelined path is unchanged.
        """
        stats = self.server.db.stats
        stats.incr("server.sessions_opened")
        max_batch = self.server.config.max_batch_requests
        try:
            while not self.closing:
                try:
                    batch = self.conn.read_message_batch(max_batch)
                except ProtocolError as exc:
                    try:
                        self.conn.write_message(error_response(exc))
                    except OSError:
                        pass
                    break
                if batch is None:  # client went away
                    break
                if not self._serve_batch(batch):
                    # A request timed out; the worker still owns the op
                    # and will clean up when it finishes.  Drop the line
                    # now — the reply stream is out of step.
                    return
        except OSError:
            pass  # transport torn down under us (shutdown, crash harness)
        finally:
            if not self.abandoned:
                self.cleanup()

    def _serve_batch(self, batch: list[dict]) -> bool:
        """Dispatch one read's worth of requests in arrival order.

        Consecutive batchable ops form a run executed as one pool job;
        direct ops (replication long-polls, status) run inline on this
        thread between runs; non-batchable pool ops (close, unknown)
        are submitted alone.  Returns False when a request timed out
        and the connection must drop.
        """
        run: list[dict] = []
        for request in batch:
            spec = (
                OP_BY_NAME.get(request.get("op"))
                if isinstance(request.get("op"), str)
                else None
            )
            if spec is not None and spec.batchable:
                run.append(request)
                continue
            if not self._flush_run(run):
                return False
            if spec is not None and spec.direct:
                self.conn.write_message(self._execute_direct(request))
                continue
            response = self.server.submit(self, request)
            if response is None:
                return False
            self.conn.write_message(response)
        return self._flush_run(run)

    def _flush_run(self, run: list[dict]) -> bool:
        if not run:
            return True
        if len(run) == 1:
            response = self.server.submit(self, run[0])
            responses = None if response is None else [response]
        else:
            responses = self.server.submit_batch(self, list(run))
        run.clear()
        if responses is None:
            return False
        self.conn.write_messages(responses)
        return True

    def cleanup(self) -> None:
        """Roll back the open transaction and drop the connection.
        Idempotent and safe from any thread."""
        with self._cleanup_lock:
            if self._cleanup_done:
                return
            self._cleanup_done = True
        txn, self.txn = self.txn, None
        if txn is not None and txn.is_active:
            try:
                self.server.db.rollback(txn)
            except Exception:  # noqa: BLE001,RPR005 - failure counted; restart will undo
                # Engine may have crashed under us; restart will undo.
                self.server.db.stats.incr("server.cleanup_rollback_errors")
        self.conn.close()
        self.server.forget_session(self)
        self.server.db.stats.incr("server.sessions_closed")

    # -- executor thread ---------------------------------------------------

    def execute(self, request: dict) -> dict:
        """Run one request; always returns a response message."""
        handler = self._resolve(request.get("op"))
        if handler is None:
            response = error_response(
                ProtocolError(f"unknown op {request.get('op')!r}")
            )
        else:
            try:
                response = {"ok": True, "result": handler(request)}
            except _TXN_FATAL_ERRORS as exc:
                self._abort_open_txn()
                response = error_response(exc)
                response["txn_aborted"] = True
            except Exception as exc:  # noqa: BLE001,RPR005 - the wire needs *a* reply
                response = error_response(exc)
        response["corr_id"] = request.get("corr_id", 0)
        return response

    def execute_batch(self, requests: list[dict]) -> list[dict]:
        """Run a batch of requests sequentially, coalescing commits.

        While the batch runs, every commit (explicit or autocommit)
        appends its COMMIT record but defers the log force; at the end
        one coalesced force covers them all (group commit for pipelined
        clients, even without a flusher thread).  Locks stay held until
        each commit finishes, so isolation is untouched; a waiter
        blocked on a deferred commit completes it early through the
        lock manager's resolver hook.  Each response reports its own
        commit's true outcome — a failed force patches the response
        after the fact.
        """
        responses: list[dict] = []
        placements: list[tuple[int, "PendingCommit"]] = []
        self._batch_pending = []
        try:
            for request in requests:
                response = self.execute(request)
                for pending in self._batch_pending:
                    placements.append((len(responses), pending))
                self._batch_pending.clear()
                responses.append(response)
        finally:
            self._batch_pending = None
        if placements:
            self.server.db.finish_deferred([p for _, p in placements])
            for index, pending in placements:
                if pending.error is not None:
                    patched = error_response(pending.error)
                    patched["corr_id"] = responses[index].get("corr_id", 0)
                    responses[index] = patched
        return responses

    def _commit_txn(self, txn: Transaction) -> None:
        """Commit now, or defer into the executing batch's group."""
        db = self.server.db
        if self._batch_pending is None:
            db.commit(txn)
            return
        pending = db.commit_deferred(txn)
        if pending is not None:
            self._batch_pending.append(pending)

    def _execute_direct(self, request: dict) -> dict:
        """Run a direct op inline (connection thread)."""
        handler = self._resolve(request.get("op"))
        try:
            if handler is None:
                raise ProtocolError(f"unknown op {request.get('op')!r}")
            response = {"ok": True, "result": handler(request)}
        except Exception as exc:  # noqa: BLE001,RPR005 - the wire needs *a* reply
            response = error_response(exc)
        response["corr_id"] = request.get("corr_id", 0)
        return response

    def _abort_open_txn(self) -> None:
        txn, self.txn = self.txn, None
        if txn is not None and txn.is_active:
            try:
                self.server.db.rollback(txn)
            except Exception:  # noqa: BLE001,RPR005 - failure counted; restart will undo
                self.server.db.stats.incr("server.cleanup_rollback_errors")

    # -- transaction ops ---------------------------------------------------

    def _op_ping(self, request: dict) -> str:
        return "pong"

    def _op_hello(self, request: dict) -> dict:
        """In-band hello (the connection-open handshake hello is
        consumed by the protocol layer before it reaches dispatch)."""
        return {"version": self.conn.version, "server": "repro"}

    def _op_begin(self, request: dict) -> int:
        if self.txn is not None:
            raise SessionStateError("transaction already open in this session")
        self.txn = self.server.db.begin()
        return self.txn.txn_id

    def _op_begin_snapshot(self, request: dict) -> int:
        """Open a snapshot-read transaction: every read in it sees one
        consistent version of the database and takes zero locks; writes
        are rejected by the engine."""
        if self.txn is not None:
            raise SessionStateError("transaction already open in this session")
        self.txn = self.server.db.begin_snapshot()
        return self.txn.txn_id

    def _require_txn(self) -> Transaction:
        if self.txn is None:
            raise SessionStateError("no transaction open in this session")
        return self.txn

    def _op_commit(self, request: dict) -> int:
        txn = self._require_txn()
        self.txn = None
        self._commit_txn(txn)
        return txn.txn_id

    def _op_rollback(self, request: dict) -> int:
        txn = self._require_txn()
        self.txn = None
        self.server.db.rollback(txn)
        return txn.txn_id

    # -- two-phase commit ops ----------------------------------------------

    def _op_prepare(self, request: dict) -> dict:
        """Phase 1: vote on the session's open transaction.  On a
        ``yes`` vote the branch leaves the session (PREPARED, locks
        held) — the decision arrives later by gid, possibly on a
        different connection after a shard restart.  On failure the
        transaction stays attached so the client can roll it back."""
        txn = self._require_txn()
        vote = self.server.db.prepare(txn, str(request["gid"]))
        self.txn = None
        return {"vote": vote}

    def _op_decide(self, request: dict) -> dict:
        """Phase 2: apply the coordinator's decision to a prepared
        branch, by gid.  Idempotent — an unknown gid means the branch
        was already resolved (or, for abort, never prepared: presumed
        abort needs nothing)."""
        gid = str(request["gid"])
        decision = request.get("decision")
        if decision not in ("commit", "abort"):
            raise ProtocolError(f"unknown decision {decision!r}")
        db = self.server.db
        if db.txns.find_prepared(gid) is None:
            return {"outcome": "forgotten"}
        if decision == "commit":
            db.commit_prepared(gid)
        else:
            db.rollback_prepared(gid)
        return {"outcome": decision}

    def _op_cluster_indoubt(self, request: dict) -> list[dict]:
        """The shard's prepared-but-undecided branches."""
        return [
            {"gid": t.gid, "txn_id": t.txn_id, "prepare_lsn": t.prepare_lsn}
            for t in self.server.db.indoubt_transactions()
        ]

    def _op_savepoint(self, request: dict) -> int:
        return self.server.db.savepoint(self._require_txn(), request["name"])

    def _op_rollback_to_savepoint(self, request: dict) -> None:
        self.server.db.rollback_to_savepoint(self._require_txn(), request["name"])

    # -- data ops ----------------------------------------------------------

    def _run_statement(
        self, fn: Callable[[Transaction], object], snapshot: bool = False
    ) -> object:
        """Run ``fn`` in the open transaction (statement savepoint) or
        autocommit.  Snapshot transactions skip the savepoint wrap —
        they never log, so there is nothing to roll back to; a
        ``snapshot=True`` autocommit runs lock-free under a throwaway
        snapshot instead of a write transaction."""
        db = self.server.db
        if self.txn is not None:
            if self.txn.snapshot is not None:
                return fn(self.txn)
            db.savepoint(self.txn, _STMT_SAVEPOINT)
            try:
                return fn(self.txn)
            except _STATEMENT_ERRORS:
                db.rollback_to_savepoint(self.txn, _STMT_SAVEPOINT)
                raise
        if snapshot:
            with db.snapshot() as txn:
                return fn(txn)
        txn = db.begin()
        try:
            result = fn(txn)
        except BaseException:
            if txn.is_active:
                db.rollback(txn)
            raise
        if txn.is_active:
            self._commit_txn(txn)
        return result

    def _op_insert(self, request: dict) -> dict:
        table, row = request["table"], request["row"]
        rid = self._run_statement(lambda txn: self.server.db.insert(txn, table, row))
        return {"page_id": rid.page_id, "slot": rid.slot}

    def _op_fetch(self, request: dict) -> dict | None:
        return self._run_statement(
            lambda txn: self.server.db.fetch(
                txn,
                request["table"],
                request["index"],
                request["key"],
                isolation=request.get("isolation", "rr"),
            ),
            snapshot=request.get("isolation") == "snapshot",
        )

    def _op_fetch_prefix(self, request: dict) -> dict | None:
        return self._run_statement(
            lambda txn: self.server.db.fetch_prefix(
                txn, request["table"], request["index"], request["prefix"]
            )
        )

    def _op_delete(self, request: dict) -> dict:
        return self._run_statement(
            lambda txn: self.server.db.delete_by_key(
                txn, request["table"], request["index"], request["key"]
            )
        )

    def _op_scan(self, request: dict) -> list[dict]:
        limit = min(
            int(request.get("limit", self.server.config.max_scan_rows)),
            self.server.config.max_scan_rows,
        )

        def scan(txn: Transaction) -> list[dict]:
            rows: list[dict] = []
            for _, row in self.server.db.scan(
                txn,
                request["table"],
                request["index"],
                low=request.get("low"),
                high=request.get("high"),
                low_comparison=request.get("low_comparison", ">="),
                high_comparison=request.get("high_comparison", "<="),
                isolation=request.get("isolation", "rr"),
            ):
                rows.append(row)
                if len(rows) >= limit:
                    break
            return rows

        return self._run_statement(
            scan, snapshot=request.get("isolation") == "snapshot"
        )

    # -- DDL / admin -------------------------------------------------------

    def _op_create_table(self, request: dict) -> str:
        self.server.db.create_table(request["name"])
        return request["name"]

    def _op_create_index(self, request: dict) -> str:
        self.server.db.create_index(
            request["table"],
            request["name"],
            column=request["column"],
            unique=bool(request.get("unique", False)),
        )
        return request["name"]

    def _op_stats(self, request: dict) -> dict[str, int]:
        prefix = request.get("prefix", "")
        return {
            name: value
            for name, value in self.server.db.stats.snapshot().items()
            if name.startswith(prefix)
        }

    def _op_close(self, request: dict) -> str:
        self.closing = True
        return "bye"

    def _op_status(self, request: dict) -> dict:
        """Wire-level recovery state: ``recovering`` until an instant
        restart's drain finishes, ``steady`` otherwise, plus the
        governor's progress so clients and standbys can back off."""
        db = self.server.db
        state = db.recovery_state
        result: dict = {"state": state, "recovering": state == "recovering"}
        governor = db.recovery
        if governor is not None:
            result["recovery"] = governor.progress()
        return result

    # -- replication (WAL shipping) ----------------------------------------

    def _replication(self):
        replication = self.server.db.replication
        if replication is None:
            raise SessionStateError(
                "replication is not enabled on this server "
                "(call db.enable_replication() first)"
            )
        return replication

    def _op_repl_handshake(self, request: dict) -> dict:
        return self._replication().handshake(str(request["name"]))

    def _op_repl_snapshot(self, request: dict) -> dict:
        return self._replication().snapshot()

    def _op_repl_poll(self, request: dict) -> dict:
        replication = self._replication()
        return replication.poll(
            str(request["name"]),
            int(request["from_lsn"]),
            max_bytes=int(request.get("max_bytes", 256 * 1024)),
            wait_seconds=min(float(request.get("wait_seconds", 0.0)), 30.0),
        )

    def _op_repl_ack(self, request: dict) -> dict:
        return self._replication().ack(
            str(request["name"]), int(request["lsn"])
        )

    def _op_repl_status(self, request: dict) -> dict:
        return self._replication().status()
