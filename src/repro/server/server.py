"""The multi-threaded embedded database server.

Architecture::

    accept thread ──► one connection thread per session (frame I/O only)
                                   │  submit(request)
                                   ▼
                      bounded queue (admission control)
                                   │
                      executor pool: N worker threads run Session.execute
                                   │
                      engine (latches/locks serialize page access;
                      group commit coalesces the commit forces)

Admission control: a request that cannot enter the bounded queue
within the admission timeout is rejected with
``ServerOverloadedError`` — backpressure instead of unbounded memory.
A request that runs past the per-request timeout gets its connection
dropped (the reply stream would be out of step otherwise); the worker
finishes the op and then cleans the session up.

Graceful shutdown drains in-flight requests, closes every session
(rolling back open transactions), stops the workers, and takes a final
checkpoint so restart starts from a quiesced log.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
from dataclasses import dataclass

from repro.common.errors import (
    ConfigError,
    RequestTimeoutError,
    ServerOverloadedError,
    ServerShutdownError,
)
from repro.db import Database
from repro.server.client import DatabaseClient
from repro.server.protocol import (
    FrameConn,
    SocketTransport,
    error_response,
    loopback_pair,
)
from repro.server.session import Session


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0
    """0 = let the OS pick a free port (tests)."""
    workers: int = 4
    """Executor pool size — the bound on concurrent engine work."""
    queue_depth: int = 64
    """Bounded request queue; beyond it, admission control rejects."""
    admission_timeout_seconds: float = 0.25
    """How long a request may wait for a queue slot before rejection."""
    request_timeout_seconds: float = 30.0
    """How long a request may execute before its session is dropped."""
    drain_timeout_seconds: float = 10.0
    """How long graceful shutdown waits for in-flight work."""
    checkpoint_on_shutdown: bool = True
    max_scan_rows: int = 1000
    """Hard cap on rows one scan response may carry."""
    max_batch_requests: int = 64
    """Most pipelined requests one connection read may drain into a
    single executor job (one admission pass, commits coalesced)."""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError("workers must be at least 1")
        if self.queue_depth < 1:
            raise ConfigError("queue_depth must be at least 1")
        if self.request_timeout_seconds <= 0 or self.drain_timeout_seconds <= 0:
            raise ConfigError("timeouts must be positive")
        if self.admission_timeout_seconds < 0:
            raise ConfigError("admission_timeout_seconds must be >= 0")
        if self.max_scan_rows < 1:
            raise ConfigError("max_scan_rows must be at least 1")
        if self.max_batch_requests < 1:
            raise ConfigError("max_batch_requests must be at least 1")


DEFAULT_SERVER_CONFIG = ServerConfig()

_STOP = object()  # worker sentinel


class _Job:
    """One request — or one batch of pipelined requests — in flight
    through the executor pool."""

    __slots__ = ("session", "request", "batch", "done", "response", "timed_out", "lock")

    def __init__(
        self, session: Session, request, batch: bool = False
    ) -> None:
        self.session = session
        self.request = request
        self.batch = batch
        self.done = threading.Event()
        #: A response dict, or a list of them for a batch job.
        self.response = None
        self.timed_out = False
        self.lock = threading.Lock()

    def settle(self, exc: Exception) -> None:
        """Resolve without execution (shutdown); callers hold ``lock``."""
        if self.batch:
            self.response = [
                {**error_response(exc), "corr_id": r.get("corr_id", 0)}
                for r in self.request
            ]
        else:
            self.response = error_response(exc)
        self.done.set()


class DatabaseServer:
    """Serve one :class:`~repro.db.Database` to many sessions."""

    def __init__(
        self, db: Database, config: ServerConfig = DEFAULT_SERVER_CONFIG
    ) -> None:
        self.db = db
        self.config = config
        self._queue: queue.Queue = queue.Queue(maxsize=config.queue_depth)
        self._sessions: set[Session] = set()
        self._sessions_lock = threading.Lock()
        self._session_ids = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._workers: list[threading.Thread] = []
        self._listener: socket.socket | None = None
        self._address: tuple[str, int] | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = False
        self._started = False
        self._shutdown_done = False
        self._executing = 0
        self._executing_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def start(self, listen: bool = True) -> "DatabaseServer":
        """Start the executor pool and (optionally) the TCP listener.

        ``listen=False`` runs loopback-only — the in-process tests and
        the crash torture harness don't need a real socket."""
        if self._started:
            return self
        self._started = True
        for i in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"db-worker-{i}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        if listen:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            listener.listen(128)
            self._listener = listener
            self._address = listener.getsockname()
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="db-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) the TCP listener is bound to."""
        if self._address is None:
            raise ServerShutdownError("server is not listening")
        return self._address

    def connect(self, timeout: float | None = 30.0) -> DatabaseClient:
        """New client over real TCP to this server."""
        host, port = self.address
        return DatabaseClient.connect(host, port, timeout=timeout)

    def connect_loopback(self, protocol: str | None = None) -> DatabaseClient:
        """New client over an in-process socketpair (no TCP stack)."""
        if self._stopping or not self._started:
            raise ServerShutdownError("server is not accepting sessions")
        server_end, client_end = loopback_pair()
        self._spawn_session(server_end)
        return DatabaseClient(FrameConn(client_end), protocol=protocol)

    def _spawn_session(self, transport: SocketTransport) -> Session:
        session = Session(self, FrameConn(transport), next(self._session_ids))
        with self._sessions_lock:
            self._sessions.add(session)
        self._threads = [t for t in self._threads if t.is_alive()]
        thread = threading.Thread(
            target=session.serve,
            name=f"db-session-{session.session_id}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()
        return session

    def forget_session(self, session: Session) -> None:
        with self._sessions_lock:
            self._sessions.discard(session)

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed by shutdown
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._spawn_session(SocketTransport(sock))

    # -- request path ------------------------------------------------------

    def submit(self, session: Session, request: dict) -> dict | None:
        """Admit, execute, and reply to one request.

        Returns the response message, or None when the request timed
        out (the session thread must stop reading — the worker still
        owns the op and cleans up)."""
        return self._submit_job(_Job(session, request), 1)

    def submit_batch(
        self, session: Session, requests: list[dict]
    ) -> list[dict] | None:
        """Admit and execute a run of pipelined requests as one job.

        The whole batch pays one admission-control pass and one queue
        slot; the worker runs :meth:`Session.execute_batch`, which
        coalesces the batch's commit forces into a single flush.
        Returns the response list (request order), or None on timeout.
        """
        return self._submit_job(
            _Job(session, requests, batch=True), len(requests)
        )

    def _submit_job(self, job: _Job, count: int):
        stats = self.db.stats
        stats.incr("server.requests", count)
        if count > 1:
            stats.incr("server.batches")
            stats.max_gauge("server.batch_peak", count)
        if self._stopping:
            job.settle(ServerShutdownError("server is shutting down"))
            return job.response
        try:
            self._queue.put(job, timeout=self.config.admission_timeout_seconds)
        except queue.Full:
            stats.incr("server.rejected_overload", count)
            job.settle(
                ServerOverloadedError(
                    f"executor queue full ({self.config.queue_depth} deep) for "
                    f"{self.config.admission_timeout_seconds}s"
                )
            )
            return job.response
        stats.max_gauge("server.queue_peak", self._queue.qsize())
        if job.done.wait(self.config.request_timeout_seconds):
            return job.response
        with job.lock:
            if job.done.is_set():  # finished just as we gave up
                return job.response
            job.timed_out = True
            job.session.abandoned = True
        stats.incr("server.request_timeouts")
        try:
            job.session.conn.write_message(
                error_response(
                    RequestTimeoutError(
                        f"request ran past {self.config.request_timeout_seconds}s; "
                        "session closed"
                    )
                )
            )
        except OSError:
            pass
        return None

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            with self._executing_lock:
                self._executing += 1
            try:
                if job.batch:
                    response = job.session.execute_batch(job.request)
                else:
                    response = job.session.execute(job.request)
            finally:
                with self._executing_lock:
                    self._executing -= 1
            with job.lock:
                job.response = response
                job.done.set()
                abandoned = job.timed_out
            if abandoned:
                # The connection thread already walked away; the op's
                # session dies here, rolling back its transaction.
                job.session.cleanup()

    @property
    def executing_count(self) -> int:
        """Requests currently running on the executor pool (the torture
        harness uses this to find a quiescent point to crash at)."""
        with self._executing_lock:
            return self._executing

    @property
    def session_count(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    # -- shutdown ----------------------------------------------------------

    def shutdown(self, drain: bool = True, checkpoint: bool | None = None) -> bool:
        """Stop the server.

        ``drain=True`` (graceful): stop admitting, let queued and
        running requests finish (up to the drain timeout), close every
        session (open transactions roll back), stop the workers, and
        take a final checkpoint.  ``drain=False`` (abort): drop
        everything immediately and leave the database alone — the crash
        harness uses this after ``db.crash()``.

        Returns True if the drain completed before the timeout."""
        import time

        if not self._started or self._shutdown_done:
            return True
        self._shutdown_done = True
        self._stopping = True
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        drained = True
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout_seconds
            while self._queue.qsize() > 0 or self.executing_count > 0:
                if time.monotonic() > deadline:
                    drained = False
                    break
                time.sleep(0.002)
        # Unblock every session reader; cleanup rolls back open txns.
        with self._sessions_lock:
            sessions = list(self._sessions)
        for session in sessions:
            session.closing = True
            session.conn.transport.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        for session in sessions:
            if not session.abandoned:
                session.cleanup()
        # Settle whatever is still queued (abort path / failed drain) so
        # session threads parked on job.done wake up and the bounded
        # queue has room for the worker sentinels.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            with job.lock:
                job.settle(
                    ServerShutdownError("server shut down before execution")
                )
        for _ in self._workers:
            self._queue.put(_STOP)
        for worker in self._workers:
            worker.join(timeout=5.0)
        if checkpoint is None:
            checkpoint = self.config.checkpoint_on_shutdown and drain
        if checkpoint and not self.db.closed and not self.db._crashed:
            self.db.checkpoint()
        self.db.stats.incr("server.shutdowns")
        if drained and drain:
            self.db.stats.incr("server.drained_clean")
        return drained

    def abort(self) -> None:
        """Hard stop that never touches the database (post-crash)."""
        self.shutdown(drain=False, checkpoint=False)
