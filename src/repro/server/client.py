"""Client library for the database server.

Speaks the length-prefixed JSON protocol over TCP or an in-process
loopback transport; server-reported errors are re-raised as the
matching library exception class (``UniqueKeyViolationError`` on the
server is ``UniqueKeyViolationError`` here).

One client = one session = at most one open transaction::

    client = DatabaseClient.connect(host, port)
    with client.transaction():
        client.insert("accounts", {"id": 7, "balance": 100})
    row = client.fetch("accounts", "by_id", 7)   # autocommit read
    client.close()

Clients are **not** thread-safe — one per worker thread (each gets its
own server session, which is the unit of concurrency server-side).
"""

from __future__ import annotations

import socket
from contextlib import contextmanager
from typing import Iterator

from repro.common.errors import ServerError
from repro.server.protocol import FrameConn, SocketTransport, raise_from_response


class RemoteTransaction:
    """Handle for the session's open transaction (id only — the state
    lives server-side)."""

    def __init__(self, client: "DatabaseClient", txn_id: int) -> None:
        self.client = client
        self.txn_id = txn_id


class DatabaseClient:
    """One session against a :class:`~repro.server.server.DatabaseServer`."""

    def __init__(self, conn: FrameConn) -> None:
        self._conn = conn
        self._closed = False

    @classmethod
    def connect(
        cls, host: str, port: int, timeout: float | None = 30.0
    ) -> "DatabaseClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(FrameConn(SocketTransport(sock)))

    # -- request plumbing --------------------------------------------------

    def request(self, op: str, **args: object) -> object:
        """Send one request, wait for its response, return the result
        (or raise the server-reported error)."""
        if self._closed:
            raise ServerError("client is closed", kind="ClientClosed")
        message = {"op": op, **args}
        try:
            self._conn.write_message(message)
            response = self._conn.read_message()
        except (OSError, socket.timeout) as exc:
            self._closed = True
            raise ServerError(
                f"connection lost during {op!r}: {exc}", kind="ConnectionLost"
            ) from exc
        if response is None:
            self._closed = True
            raise ServerError(
                f"server closed the connection during {op!r}", kind="ConnectionLost"
            )
        if not response.get("ok"):
            raise_from_response(response)
        return response.get("result")

    # -- transactions ------------------------------------------------------

    def begin(self) -> RemoteTransaction:
        return RemoteTransaction(self, int(self.request("begin")))  # type: ignore[arg-type]

    def begin_snapshot(self) -> RemoteTransaction:
        """Open a snapshot-read transaction: every read sees one
        consistent version of the database and takes zero locks; writes
        inside it are rejected server-side."""
        return RemoteTransaction(self, int(self.request("begin_snapshot")))  # type: ignore[arg-type]

    def commit(self) -> None:
        self.request("commit")

    def rollback(self) -> None:
        self.request("rollback")

    def savepoint(self, name: str) -> int:
        return int(self.request("savepoint", name=name))  # type: ignore[arg-type]

    def rollback_to_savepoint(self, name: str) -> None:
        self.request("rollback_to_savepoint", name=name)

    @contextmanager
    def transaction(self) -> Iterator[RemoteTransaction]:
        """Commit on clean exit, roll back on exception (re-raised).
        Mirrors ``Database.transaction``; if the server already aborted
        the transaction (deadlock victim), the rollback is a no-op
        failure that stays quiet."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            try:
                self.rollback()
            except ServerError:
                pass  # already aborted server-side, or connection gone
            raise
        else:
            self.commit()

    @contextmanager
    def snapshot(self) -> Iterator[RemoteTransaction]:
        """Run a block of lock-free reads against one consistent
        snapshot.  Mirrors ``Database.snapshot``; commit and rollback
        both just release the snapshot server-side."""
        txn = self.begin_snapshot()
        try:
            yield txn
        except BaseException:
            try:
                self.rollback()
            except ServerError:
                pass  # connection gone or already released server-side
            raise
        else:
            self.commit()

    # -- two-phase commit (this session's shard as a participant) ----------

    def prepare(self, gid: str) -> str:
        """Phase 1: vote on the open transaction.  Returns ``"yes"``
        (branch PREPARED, decision pending) or ``"read-only"``."""
        result = self.request("prepare", gid=gid)
        return result["vote"]  # type: ignore[index]

    def decide(self, gid: str, decision: str) -> str:
        """Phase 2: deliver ``"commit"``/``"abort"`` for ``gid``.
        Idempotent; returns the applied outcome (``"forgotten"`` if the
        branch was already resolved)."""
        result = self.request("decide", gid=gid, decision=decision)
        return result["outcome"]  # type: ignore[index]

    def cluster_indoubt(self) -> list[dict]:
        """The shard's prepared-but-undecided branches."""
        return self.request("cluster_indoubt")  # type: ignore[return-value]

    # -- data ops ----------------------------------------------------------

    def insert(self, table: str, row: dict) -> dict:
        return self.request("insert", table=table, row=row)  # type: ignore[return-value]

    def fetch(self, table: str, index: str, key: object, isolation: str = "rr"):
        return self.request(
            "fetch", table=table, index=index, key=key, isolation=isolation
        )

    def fetch_prefix(self, table: str, index: str, prefix: object):
        return self.request("fetch_prefix", table=table, index=index, prefix=prefix)

    def delete_by_key(self, table: str, index: str, key: object) -> dict:
        return self.request("delete", table=table, index=index, key=key)  # type: ignore[return-value]

    def scan(
        self,
        table: str,
        index: str,
        low: object | None = None,
        high: object | None = None,
        limit: int | None = None,
        **kwargs: object,
    ) -> list[dict]:
        args: dict[str, object] = {"table": table, "index": index, **kwargs}
        if low is not None:
            args["low"] = low
        if high is not None:
            args["high"] = high
        if limit is not None:
            args["limit"] = limit
        return self.request("scan", **args)  # type: ignore[return-value]

    # -- DDL / admin -------------------------------------------------------

    def create_table(self, name: str) -> None:
        self.request("create_table", name=name)

    def create_index(
        self, table: str, name: str, column: str, unique: bool = False
    ) -> None:
        self.request(
            "create_index", table=table, name=name, column=column, unique=unique
        )

    def ping(self) -> bool:
        return self.request("ping") == "pong"

    def server_stats(self, prefix: str = "") -> dict[str, int]:
        return self.request("stats", prefix=prefix)  # type: ignore[return-value]

    def server_status(self) -> dict:
        """Recovery state over the wire: ``{"state": "recovering"|"steady",
        "recovering": bool, "recovery": {...progress...}}``."""
        return self.request("status")  # type: ignore[return-value]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Polite goodbye; always closes the local transport."""
        if self._closed:
            return
        try:
            self.request("close")
        except ServerError:
            pass
        finally:
            self._closed = True
            self._conn.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "DatabaseClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
