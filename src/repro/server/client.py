"""Client library for the database server.

Speaks wire protocol v2 (binary frames, the default) or v1
(length-prefixed JSON, ``protocol="json"``) over TCP or an in-process
loopback transport; server-reported errors are re-raised as the
matching library exception class (``UniqueKeyViolationError`` on the
server is ``UniqueKeyViolationError`` here, and over v2 structured
fields like a deadlock's victim and cycle survive the trip).

One client = one session = at most one open transaction::

    client = DatabaseClient.connect(host, port)
    with client.transaction():
        client.insert("accounts", {"id": 7, "balance": 100})
    row = client.fetch("accounts", "by_id", 7)   # autocommit read
    client.close()

Pipelining (v2): queue many requests, send them in one write, and let
the server batch-execute them — each queued op returns a future::

    with client.pipeline() as pipe:
        futures = [pipe.insert("accounts", row) for row in rows]
    results = [f.result() for f in futures]   # or f.error

The default protocol honours the ``REPRO_WIRE_PROTOCOL`` environment
variable (``binary`` or ``json``) so a whole test suite can be pointed
at either version without code changes.

Clients are **not** thread-safe — one per worker thread (each gets its
own server session, which is the unit of concurrency server-side).
"""

from __future__ import annotations

import os
import socket
from contextlib import contextmanager
from typing import Iterator

from repro.codec.errors import rebuild_error
from repro.common.errors import ProtocolError, ServerError
from repro.server.protocol import (
    PROTOCOL_V2,
    FrameConn,
    SocketTransport,
    raise_from_response,
)

_PROTOCOL_ENV = "REPRO_WIRE_PROTOCOL"


def _resolve_protocol(protocol: str | None) -> str:
    if protocol is None:
        protocol = os.environ.get(_PROTOCOL_ENV, "binary")
    if protocol not in ("binary", "json"):
        raise ProtocolError(
            f"unknown protocol {protocol!r} (want 'binary' or 'json')"
        )
    return protocol


class RemoteTransaction:
    """Handle for the session's open transaction (id only — the state
    lives server-side)."""

    def __init__(self, client: "DatabaseClient", txn_id: int) -> None:
        self.client = client
        self.txn_id = txn_id


class PipelineFuture:
    """The eventual response of one pipelined request."""

    __slots__ = ("op", "done", "_result", "_error")

    def __init__(self, op: str) -> None:
        self.op = op
        self.done = False
        self._result: object = None
        self._error: Exception | None = None

    def _settle(self, response: dict) -> None:
        self.done = True
        if response.get("ok"):
            self._result = response.get("result")
        else:
            self._error = rebuild_error(response)

    def _fail(self, error: Exception) -> None:
        self.done = True
        self._error = error

    @property
    def error(self) -> Exception | None:
        """The op's failure, if any (flushed futures only)."""
        return self._error

    def result(self) -> object:
        """The op's result; raises its server-reported error."""
        if not self.done:
            raise ServerError(
                f"pipelined {self.op!r} not flushed yet", kind="PipelineError"
            )
        if self._error is not None:
            raise self._error
        return self._result


class Pipeline:
    """Queue requests, flush them as one batched write.

    Created by :meth:`DatabaseClient.pipeline`.  Queued ops return
    :class:`PipelineFuture`; :meth:`flush` (or queue pressure at
    ``depth``, or clean context exit) sends every queued frame in one
    write and resolves the futures from the responses — matched by
    correlation id on v2, by order on v1.  While a pipeline has queued
    ops, do not issue plain ``client.request`` calls — the reply stream
    would interleave.
    """

    def __init__(self, client: "DatabaseClient", depth: int = 64) -> None:
        if depth < 1:
            raise ProtocolError("pipeline depth must be at least 1")
        self._client = client
        self._depth = depth
        self._queued: list[tuple[dict, PipelineFuture]] = []

    def request(self, op: str, **args: object) -> PipelineFuture:
        """Queue one op; auto-flushes at the pipeline's depth."""
        client = self._client
        if client.closed:
            raise ServerError("client is closed", kind="ClientClosed")
        message = {"op": op, "corr_id": client._next_corr_id(), **args}
        future = PipelineFuture(op)
        self._queued.append((message, future))
        if len(self._queued) >= self._depth:
            self.flush()
        return future

    def flush(self) -> None:
        """Send every queued request, read every response, settle the
        futures (errors land on the future, not here)."""
        queued, self._queued = self._queued, []
        if not queued:
            return
        client = self._client
        try:
            client._conn.write_messages([m for m, _ in queued])
            responses = []
            for _ in queued:
                response = client._conn.read_message()
                if response is None:
                    raise ServerError(
                        "server closed the connection mid-pipeline",
                        kind="ConnectionLost",
                    )
                responses.append(response)
        except (OSError, socket.timeout) as exc:
            client._closed = True
            error = ServerError(
                f"connection lost during pipeline flush: {exc}",
                kind="ConnectionLost",
            )
            for _, future in queued:
                future._fail(error)
            raise error from exc
        except ServerError as error:
            client._closed = True
            for _, future in queued:
                future._fail(error)
            raise
        if client.protocol_version == PROTOCOL_V2:
            by_id = {r.get("corr_id"): r for r in responses}
            for message, future in queued:
                response = by_id.get(message["corr_id"])
                if response is None:
                    future._fail(
                        ProtocolError(
                            f"no response for correlation id {message['corr_id']}"
                        )
                    )
                else:
                    future._settle(response)
        else:
            for (_, future), response in zip(queued, responses):
                future._settle(response)

    @property
    def pending(self) -> int:
        return len(self._queued)

    # Convenience stubs mirroring the client's op surface.

    def begin(self) -> PipelineFuture:
        return self.request("begin")

    def commit(self) -> PipelineFuture:
        return self.request("commit")

    def rollback(self) -> PipelineFuture:
        return self.request("rollback")

    def ping(self) -> PipelineFuture:
        return self.request("ping")

    def insert(self, table: str, row: dict) -> PipelineFuture:
        return self.request("insert", table=table, row=row)

    def fetch(
        self, table: str, index: str, key: object, isolation: str = "rr"
    ) -> PipelineFuture:
        return self.request(
            "fetch", table=table, index=index, key=key, isolation=isolation
        )

    def delete_by_key(self, table: str, index: str, key: object) -> PipelineFuture:
        return self.request("delete", table=table, index=index, key=key)

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if exc_type is None:
            self.flush()
        else:
            # Abandon what was never sent; anything already flushed has
            # settled its futures.
            self._queued.clear()


class DatabaseClient:
    """One session against a :class:`~repro.server.server.DatabaseServer`."""

    def __init__(self, conn: FrameConn, protocol: str | None = None) -> None:
        self._conn = conn
        self._closed = False
        self._corr = 0
        if _resolve_protocol(protocol) == "binary":
            conn.start_client_v2()

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        protocol: str | None = None,
    ) -> "DatabaseClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(FrameConn(SocketTransport(sock)), protocol=protocol)

    @property
    def protocol_version(self) -> int:
        """Negotiated wire version (1 = JSON, 2 = binary)."""
        return self._conn.version

    def _next_corr_id(self) -> int:
        self._corr = (self._corr + 1) & 0xFFFFFFFF
        return self._corr or 1

    # -- request plumbing --------------------------------------------------

    def request(self, op: str, **args: object) -> object:
        """Send one request, wait for its response, return the result
        (or raise the server-reported error)."""
        if self._closed:
            raise ServerError("client is closed", kind="ClientClosed")
        message = {"op": op, "corr_id": self._next_corr_id(), **args}
        try:
            self._conn.write_message(message)
            response = self._conn.read_message()
        except (OSError, socket.timeout) as exc:
            self._closed = True
            raise ServerError(
                f"connection lost during {op!r}: {exc}", kind="ConnectionLost"
            ) from exc
        if response is None:
            self._closed = True
            raise ServerError(
                f"server closed the connection during {op!r}", kind="ConnectionLost"
            )
        if not response.get("ok"):
            raise_from_response(response)
        return response.get("result")

    def pipeline(self, depth: int = 64) -> Pipeline:
        """A request pipeline over this connection (see
        :class:`Pipeline`).  ``depth`` bounds queued requests before an
        automatic flush."""
        return Pipeline(self, depth=depth)

    # -- transactions ------------------------------------------------------

    def begin(self) -> RemoteTransaction:
        return RemoteTransaction(self, int(self.request("begin")))  # type: ignore[arg-type]

    def begin_snapshot(self) -> RemoteTransaction:
        """Open a snapshot-read transaction: every read sees one
        consistent version of the database and takes zero locks; writes
        inside it are rejected server-side."""
        return RemoteTransaction(self, int(self.request("begin_snapshot")))  # type: ignore[arg-type]

    def commit(self) -> None:
        self.request("commit")

    def rollback(self) -> None:
        self.request("rollback")

    def savepoint(self, name: str) -> int:
        return int(self.request("savepoint", name=name))  # type: ignore[arg-type]

    def rollback_to_savepoint(self, name: str) -> None:
        self.request("rollback_to_savepoint", name=name)

    @contextmanager
    def transaction(self) -> Iterator[RemoteTransaction]:
        """Commit on clean exit, roll back on exception (re-raised).
        Mirrors ``Database.transaction``; if the server already aborted
        the transaction (deadlock victim), the rollback is a no-op
        failure that stays quiet."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            try:
                self.rollback()
            except ServerError:
                pass  # already aborted server-side, or connection gone
            raise
        else:
            self.commit()

    @contextmanager
    def snapshot(self) -> Iterator[RemoteTransaction]:
        """Run a block of lock-free reads against one consistent
        snapshot.  Mirrors ``Database.snapshot``; commit and rollback
        both just release the snapshot server-side."""
        txn = self.begin_snapshot()
        try:
            yield txn
        except BaseException:
            try:
                self.rollback()
            except ServerError:
                pass  # connection gone or already released server-side
            raise
        else:
            self.commit()

    # -- two-phase commit (this session's shard as a participant) ----------

    def prepare(self, gid: str) -> str:
        """Phase 1: vote on the open transaction.  Returns ``"yes"``
        (branch PREPARED, decision pending) or ``"read-only"``."""
        result = self.request("prepare", gid=gid)
        return result["vote"]  # type: ignore[index]

    def decide(self, gid: str, decision: str) -> str:
        """Phase 2: deliver ``"commit"``/``"abort"`` for ``gid``.
        Idempotent; returns the applied outcome (``"forgotten"`` if the
        branch was already resolved)."""
        result = self.request("decide", gid=gid, decision=decision)
        return result["outcome"]  # type: ignore[index]

    def cluster_indoubt(self) -> list[dict]:
        """The shard's prepared-but-undecided branches."""
        return self.request("cluster_indoubt")  # type: ignore[return-value]

    # -- data ops ----------------------------------------------------------

    def insert(self, table: str, row: dict) -> dict:
        return self.request("insert", table=table, row=row)  # type: ignore[return-value]

    def fetch(self, table: str, index: str, key: object, isolation: str = "rr"):
        return self.request(
            "fetch", table=table, index=index, key=key, isolation=isolation
        )

    def fetch_prefix(self, table: str, index: str, prefix: object):
        return self.request("fetch_prefix", table=table, index=index, prefix=prefix)

    def delete_by_key(self, table: str, index: str, key: object) -> dict:
        return self.request("delete", table=table, index=index, key=key)  # type: ignore[return-value]

    def scan(
        self,
        table: str,
        index: str,
        low: object | None = None,
        high: object | None = None,
        limit: int | None = None,
        **kwargs: object,
    ) -> list[dict]:
        args: dict[str, object] = {"table": table, "index": index, **kwargs}
        if low is not None:
            args["low"] = low
        if high is not None:
            args["high"] = high
        if limit is not None:
            args["limit"] = limit
        return self.request("scan", **args)  # type: ignore[return-value]

    # -- DDL / admin -------------------------------------------------------

    def create_table(self, name: str) -> None:
        self.request("create_table", name=name)

    def create_index(
        self, table: str, name: str, column: str, unique: bool = False
    ) -> None:
        self.request(
            "create_index", table=table, name=name, column=column, unique=unique
        )

    def ping(self) -> bool:
        return self.request("ping") == "pong"

    def server_stats(self, prefix: str = "") -> dict[str, int]:
        return self.request("stats", prefix=prefix)  # type: ignore[return-value]

    def server_status(self) -> dict:
        """Recovery state over the wire: ``{"state": "recovering"|"steady",
        "recovering": bool, "recovery": {...progress...}}``."""
        return self.request("status")  # type: ignore[return-value]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Polite goodbye; always closes the local transport."""
        if self._closed:
            return
        try:
            self.request("close")
        except ServerError:
            pass
        finally:
            self._closed = True
            self._conn.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "DatabaseClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
