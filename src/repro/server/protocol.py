"""The wire protocol: v2 binary frames, v1 length-prefixed JSON.

Protocol v2 (the default) is the struct-packed binary framing of
:mod:`repro.codec.frames`: a 12-byte header (length, version, flags,
opcode, correlation id) over the tagged value codec the WAL already
uses.  Responses echo their request's correlation id, which is what
makes client-side pipelining work.

Protocol v1 is the original framing: a 4-byte big-endian length
followed by that many bytes of UTF-8 JSON.  Requests are objects with
an ``"op"`` key plus op-specific arguments; responses are
``{"ok": true, "result": ...}`` or ``{"ok": false, "error": "<kind>",
"message": "..."}``.

Negotiation is a connection-open sniff: a v2 client sends the 4-byte
``RPC2`` preamble plus a ``hello`` frame before anything else.  Read as
a v1 length header, the preamble exceeds ``MAX_FRAME_BYTES`` — no legal
v1 client can produce it — so the server peeks the first 4 bytes and
speaks v1 or v2 per connection.  Old clients need zero changes.

Both versions normalize to the same message dicts at this layer:
requests are ``{"op": ..., "corr_id": ..., **args}`` and responses are
``{"ok": ..., "corr_id": ..., ...}``, so the session and client code
above are version-blind.

Two transports speak it: a TCP socket on localhost and an in-process
loopback built from :func:`socket.socketpair` — same framing, same
code path, no TCP stack in unit tests.
"""

from __future__ import annotations

import json
import select
import socket
import struct

from repro.codec.errors import WIRE_ERRORS, error_payload, raise_from_payload
from repro.codec.frames import (
    FLAG_ERROR,
    FLAG_RESPONSE,
    HEADER_SIZE,
    MAGIC,
    MAX_FRAME_BYTES,
    PROTOCOL_V1,
    PROTOCOL_V2,
    encode_frame,
    hello_ack_payload,
    hello_payload,
    try_parse_frame,
)
from repro.codec.ops import OP_BY_CODE, OP_BY_NAME, OP_HELLO
from repro.common.errors import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "WIRE_ERRORS",
    "FrameConn",
    "SocketTransport",
    "decode_body",
    "encode_message",
    "error_response",
    "loopback_pair",
    "raise_from_response",
]

_HEADER = struct.Struct(">I")


def encode_message(message: dict) -> bytes:
    """Serialize ``message`` into one v1 frame (header + JSON body)."""
    try:
        body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serializable: {exc}") from exc
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body is {type(message).__name__}, not an object")
    return message


def error_response(exc: BaseException) -> dict:
    """The ``{"ok": false, ...}`` response message for ``exc``.

    Carries the structured ``args`` of :func:`error_payload`; the v1
    JSON write path strips what JSON cannot represent.
    """
    return {"ok": False, **error_payload(exc)}


def raise_from_response(response: dict) -> None:
    """Client side: re-raise the server-reported error, by kind."""
    raise_from_payload(response)


class SocketTransport:
    """Blocking byte transport over one socket (TCP or socketpair)."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._closed = False

    def send_bytes(self, data: bytes) -> None:
        self._sock.sendall(data)

    def recv_exactly(self, count: int) -> bytes:
        """Read exactly ``count`` bytes; empty bytes on clean EOF at a
        frame boundary, ProtocolError on EOF mid-frame."""
        chunks: list[bytes] = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(min(remaining, 65536))
            if not chunk:
                if remaining == count:
                    return b""
                raise ProtocolError(
                    f"connection closed mid-frame ({count - remaining}/{count} bytes)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv_some(self, limit: int = 65536) -> bytes:
        """One blocking read of up to ``limit`` bytes (b"" on EOF)."""
        return self._sock.recv(limit)

    def readable_now(self) -> bool:
        """Would :meth:`recv_some` return without blocking?"""
        try:
            ready, _, _ = select.select([self._sock], [], [], 0)
        except (ValueError, OSError):
            return False  # closed under us; the next blocking read reports it
        return bool(ready)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed


def loopback_pair() -> tuple[SocketTransport, SocketTransport]:
    """An in-process (server, client) transport pair — the loopback
    tests and the load generator use instead of real TCP."""
    server_sock, client_sock = socket.socketpair()
    return SocketTransport(server_sock), SocketTransport(client_sock)


#: Message keys that are framing metadata, not op arguments.
_META_KEYS = frozenset(("op", "corr_id"))


class FrameConn:
    """Message-level reader/writer over a transport, version-aware.

    A server-side conn starts unnegotiated and sniffs the first 4 bytes
    of the connection inside the first :meth:`read_message`.  A
    client-side conn either calls :meth:`start_client_v2` (send the
    preamble and hello eagerly; the ack is consumed before the first
    response) or stays v1 by doing nothing.
    """

    def __init__(self, transport: SocketTransport) -> None:
        self.transport = transport
        self.version = PROTOCOL_V1
        self._negotiated = False
        #: v1 length header sniffed during server negotiation.
        self._stash = b""
        #: v2 receive buffer (frames parsed in place via memoryview).
        self._buf = bytearray()
        self._off = 0
        #: Client side: hello ack not yet consumed.
        self._awaiting_ack = False

    # -- negotiation ---------------------------------------------------------

    def start_client_v2(self, client: str = "repro-client") -> None:
        """Open the connection as a v2 client: send the ``RPC2``
        preamble and the hello frame now; consume the ack lazily just
        before the first response read (one round trip saved)."""
        self.version = PROTOCOL_V2
        self._negotiated = True
        self._awaiting_ack = True
        hello = encode_frame(OP_HELLO.code, 0, hello_payload(client))
        self.transport.send_bytes(MAGIC + hello)

    def _negotiate_server(self) -> bool:
        """Sniff the connection's first 4 bytes; False on clean EOF."""
        self._negotiated = True
        preamble = self.transport.recv_exactly(4)
        if not preamble:
            return False
        if preamble != MAGIC:
            # A v1 length header; stash it for the first v1 read.
            self._stash = preamble
            return True
        self.version = PROTOCOL_V2
        frame = self._read_frame()
        if frame is None:
            raise ProtocolError("connection closed before hello frame")
        if frame.opcode != OP_HELLO.code or frame.is_response:
            raise ProtocolError(
                f"expected hello frame, got opcode {frame.opcode}"
            )
        versions = (
            frame.payload.get("versions")
            if isinstance(frame.payload, dict)
            else None
        )
        if not isinstance(versions, list) or PROTOCOL_V2 not in versions:
            raise ProtocolError(f"client offered no supported version: {versions!r}")
        ack = encode_frame(
            OP_HELLO.code,
            frame.corr_id,
            hello_ack_payload(),
            flags=FLAG_RESPONSE,
        )
        self.transport.send_bytes(ack)
        return True

    def _consume_ack(self) -> None:
        self._awaiting_ack = False
        frame = self._read_frame()
        if frame is None:
            raise ProtocolError("connection closed before hello ack")
        if frame.is_error:
            raise_from_payload(frame.payload if isinstance(frame.payload, dict) else {})
        if frame.opcode != OP_HELLO.code or not frame.is_response:
            raise ProtocolError(
                f"expected hello ack, got opcode {frame.opcode}"
            )

    # -- v2 frame buffer ------------------------------------------------------

    def _read_frame(self, block: bool = True):
        """Next complete frame; None on clean EOF (or, when ``block``
        is false, when completing a frame would block)."""
        while True:
            parsed = try_parse_frame(self._buf, self._off)
            if parsed is not None:
                frame, self._off = parsed
                if self._off >= len(self._buf):
                    self._buf.clear()
                    self._off = 0
                return frame
            if not block and not self.transport.readable_now():
                return None
            chunk = self.transport.recv_some()
            if not chunk:
                if self._off >= len(self._buf):
                    return None
                raise ProtocolError("connection closed mid-frame")
            if self._off:
                del self._buf[: self._off]
                self._off = 0
            self._buf += chunk

    def _frame_to_request(self, frame) -> dict:
        spec = OP_BY_CODE.get(frame.opcode)
        if spec is None:
            raise ProtocolError(f"unknown opcode {frame.opcode}")
        message = dict(frame.payload) if isinstance(frame.payload, dict) else {}
        message["op"] = spec.name
        message["corr_id"] = frame.corr_id
        return message

    def _frame_to_response(self, frame) -> dict:
        payload = frame.payload if isinstance(frame.payload, dict) else {}
        if frame.is_error:
            return {"ok": False, "corr_id": frame.corr_id, **payload}
        return {
            "ok": True,
            "corr_id": frame.corr_id,
            "result": payload.get("result"),
        }

    def _frame_to_message(self, frame) -> dict:
        if frame.is_response:
            return self._frame_to_response(frame)
        return self._frame_to_request(frame)

    # -- writing ---------------------------------------------------------------

    def encode(self, message: dict) -> bytes:
        """Serialize one message for this connection's version."""
        if self.version != PROTOCOL_V2:
            return encode_message(self._sanitize_v1(message))
        op = message.get("op")
        if op is not None:
            spec = OP_BY_NAME.get(op)
            if spec is None:
                raise ProtocolError(f"unknown op {op!r}")
            args = {k: v for k, v in message.items() if k not in _META_KEYS}
            return encode_frame(spec.code, message.get("corr_id", 0), args)
        corr_id = message.get("corr_id", 0)
        flags = FLAG_RESPONSE
        if message.get("ok"):
            payload = {"result": message.get("result")}
        else:
            flags |= FLAG_ERROR
            payload = {
                k: v
                for k, v in message.items()
                if k not in ("ok", "corr_id")
            }
        return encode_frame(0, corr_id, payload, flags=flags)

    @staticmethod
    def _sanitize_v1(message: dict) -> dict:
        """Project a message onto what v1 JSON can say: drop the
        correlation id (v1 responses match by order) and any structured
        error args JSON cannot represent."""
        if "corr_id" not in message and "args" not in message:
            return message
        out = {k: v for k, v in message.items() if k != "corr_id"}
        args = out.get("args")
        if isinstance(args, dict) and any(
            isinstance(v, (bytes, bytearray, memoryview)) for v in args.values()
        ):
            safe = {
                k: v
                for k, v in args.items()
                if not isinstance(v, (bytes, bytearray, memoryview))
            }
            if safe:
                out["args"] = safe
            else:
                del out["args"]
        return out

    def write_message(self, message: dict) -> None:
        self.transport.send_bytes(self.encode(message))

    def write_messages(self, messages: list[dict]) -> None:
        """Send many messages in one write (batch responses, pipelined
        requests)."""
        if not messages:
            return
        self.transport.send_bytes(b"".join(self.encode(m) for m in messages))

    # -- reading ---------------------------------------------------------------

    def read_message(self) -> dict | None:
        """Next message, or None on clean EOF."""
        if not self._negotiated and not self._negotiate_server():
            return None
        if self.version == PROTOCOL_V2:
            if self._awaiting_ack:
                self._consume_ack()
            frame = self._read_frame()
            return None if frame is None else self._frame_to_message(frame)
        return self._read_v1()

    def read_message_batch(self, limit: int) -> list[dict] | None:
        """One blocking message plus every further message already
        buffered or immediately readable, up to ``limit`` total; None
        on clean EOF.  v1 connections always yield one message —
        batching is a v2 feature."""
        first = self.read_message()
        if first is None:
            return None
        batch = [first]
        if self.version != PROTOCOL_V2:
            return batch
        while len(batch) < limit:
            frame = self._read_frame(block=False)
            if frame is None:
                break
            batch.append(self._frame_to_message(frame))
        return batch

    def _read_v1(self) -> dict | None:
        if self._stash:
            header, self._stash = self._stash, b""
        else:
            header = self.transport.recv_exactly(_HEADER.size)
        if not header:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
        return decode_body(self.transport.recv_exactly(length) if length else b"{}")

    def close(self) -> None:
        self.transport.close()
