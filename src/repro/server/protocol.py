"""The wire protocol: length-prefixed JSON frames.

One frame = a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  Requests are objects with an ``"op"`` key plus op-specific
arguments; responses are ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": "<kind>", "message": "..."}`` where ``kind``
is the library exception class name (the client re-raises the matching
class, so ``UniqueKeyViolationError`` round-trips as itself).

Two transports speak it: a TCP socket on localhost and an in-process
loopback built from :func:`socket.socketpair` — same framing, same
code path, no TCP stack in unit tests.
"""

from __future__ import annotations

import json
import socket
import struct

from repro.common import errors as _errors
from repro.common.errors import ProtocolError, ServerError

MAX_FRAME_BYTES = 4 << 20
_HEADER = struct.Struct(">I")

#: Exception classes a server may report and a client can re-raise.
#: Anything not listed arrives client-side as a plain ServerError whose
#: ``kind`` preserves the original class name.
WIRE_ERRORS: dict[str, type[Exception]] = {
    name: cls
    for name, cls in vars(_errors).items()
    if isinstance(cls, type) and issubclass(cls, _errors.ReproError)
}


def encode_message(message: dict) -> bytes:
    """Serialize ``message`` into one frame (header + JSON body)."""
    try:
        body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serializable: {exc}") from exc
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body is {type(message).__name__}, not an object")
    return message


def error_response(exc: BaseException) -> dict:
    kind = getattr(exc, "kind", None) or type(exc).__name__
    return {"ok": False, "error": kind, "message": str(exc)}


def raise_from_response(response: dict) -> None:
    """Client side: re-raise the server-reported error, by kind."""
    kind = response.get("error", "ServerError")
    message = response.get("message", "")
    cls = WIRE_ERRORS.get(kind)
    if cls is None:
        raise ServerError(message, kind=kind)
    if issubclass(cls, ServerError):
        raise cls(message, kind=kind)
    try:
        raise cls(message)
    except TypeError:
        # The class wants structured constructor args (DeadlockError
        # takes a cycle) that don't cross the wire; rebuild it bare so
        # callers can still dispatch on the type.
        exc = cls.__new__(cls)
        Exception.__init__(exc, message)
        raise exc from None


class SocketTransport:
    """Blocking byte transport over one socket (TCP or socketpair)."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._closed = False

    def send_bytes(self, data: bytes) -> None:
        self._sock.sendall(data)

    def recv_exactly(self, count: int) -> bytes:
        """Read exactly ``count`` bytes; empty bytes on clean EOF at a
        frame boundary, ProtocolError on EOF mid-frame."""
        chunks: list[bytes] = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(min(remaining, 65536))
            if not chunk:
                if remaining == count:
                    return b""
                raise ProtocolError(
                    f"connection closed mid-frame ({count - remaining}/{count} bytes)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed


def loopback_pair() -> tuple[SocketTransport, SocketTransport]:
    """An in-process (server, client) transport pair — the loopback
    tests and the load generator use instead of real TCP."""
    server_sock, client_sock = socket.socketpair()
    return SocketTransport(server_sock), SocketTransport(client_sock)


class FrameConn:
    """Frame-level reader/writer over a transport."""

    def __init__(self, transport: SocketTransport) -> None:
        self.transport = transport

    def write_message(self, message: dict) -> None:
        self.transport.send_bytes(encode_message(message))

    def read_message(self) -> dict | None:
        """Next message, or None on clean EOF."""
        header = self.transport.recv_exactly(_HEADER.size)
        if not header:
            return None
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
        return decode_body(self.transport.recv_exactly(length) if length else b"{}")

    def close(self) -> None:
        self.transport.close()
